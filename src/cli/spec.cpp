#include "cli/spec.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <string_view>

#include "graph/generators.hpp"
#include "graph/scalable_gen.hpp"
#include "util/check.hpp"

namespace detcol::cli {

namespace {

/// Realize a scalable-generator spec as a mapped Graph. With --cache=PATH
/// the .dcg is generated once and reused on later runs (a present cache is
/// trusted after map-time validation plus an n cross-check against the
/// spec); without it the graph streams to a temp file that is unlinked as
/// soon as the mapping is live — the mapping keeps the pages reachable, so
/// the instance never occupies a heap-resident CSR either way.
Graph realize_scalable(const ScalableGenSpec& gen_spec, const ArgParser& args,
                       ExecContext exec) {
  const std::string cache = get_value_flag(args, "cache", "");
  if (!cache.empty()) {
    if (std::filesystem::exists(cache)) {
      Graph g = map_dcg_file(cache, exec);
      DC_CHECK(g.num_nodes() == gen_spec.n, cache, ": cached graph has n=",
               g.num_nodes(), " but the generator spec says n=", gen_spec.n,
               " — stale cache? delete it to regenerate");
      return g;
    }
    generate_scalable_dcg(gen_spec, cache, exec);
    return map_dcg_file(cache, exec);
  }
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp =
      (std::filesystem::temp_directory_path() /
       ("detcol-scalable-" + std::to_string(::getpid()) + "-" +
        std::to_string(counter.fetch_add(1)) + ".dcg"))
          .string();
  generate_scalable_dcg(gen_spec, tmp, exec);
  Graph g = map_dcg_file(tmp, exec);
  std::error_code ec;
  std::filesystem::remove(tmp, ec);  // the live mapping outlives the name
  return g;
}

}  // namespace

void usage_error(const std::string& msg) { throw UsageError(msg); }

std::uint64_t parse_uint_strict(const std::string& s, const std::string& what) {
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
  // strtoull silently wraps a leading '-', so require a digit up front.
  if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])) ||
      *end != '\0' || errno == ERANGE) {
    usage_error(what + " expects an unsigned integer, got '" + s + "'");
  }
  return v;
}

std::uint64_t get_uint_strict(const ArgParser& args, const std::string& name,
                              std::uint64_t fallback) {
  if (!args.has(name)) return fallback;
  return parse_uint_strict(args.get_string(name, ""), "flag --" + name);
}

NodeId get_nodeid_strict(const ArgParser& args, const std::string& name,
                         NodeId fallback) {
  const std::uint64_t v = get_uint_strict(args, name, fallback);
  if (v > std::numeric_limits<NodeId>::max()) {
    usage_error("flag --" + name + " exceeds the node-id limit (2^32-1), got " +
                std::to_string(v));
  }
  return static_cast<NodeId>(v);
}

std::string get_value_flag(const ArgParser& args, const std::string& name,
                           const std::string& fallback) {
  if (args.was_bare(name)) {
    usage_error("flag --" + name + " requires a value (--" + name + "=...)");
  }
  return args.get_string(name, fallback);
}

double get_double_strict(const ArgParser& args, const std::string& name,
                         double fallback) {
  if (!args.has(name)) return fallback;
  const std::string s = args.get_string(name, "");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || *end != '\0' || errno == ERANGE) {
    usage_error("flag --" + name + " expects a number, got '" + s + "'");
  }
  return v;
}

bool get_bool_strict(const ArgParser& args, const std::string& name) {
  if (!args.has(name)) return false;
  const std::string s = args.get_string(name, "");
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  usage_error("flag --" + name + " is boolean, got '" + s + "'");
}

unsigned resolve_threads(const ArgParser& args) {
  std::string src = "flag --threads";
  std::string s;
  if (args.has("threads")) {
    s = args.get_string("threads", "");
  } else if (const char* env = std::getenv("DETCOL_THREADS")) {
    src = "DETCOL_THREADS";
    s = env;
  } else {
    return 1;
  }
  const std::uint64_t v = parse_uint_strict(s, src);
  if (v < 1 || v > kMaxThreads) {
    usage_error(src + " must be in [1, " + std::to_string(kMaxThreads) +
                "], got " + s);
  }
  return static_cast<unsigned>(v);
}

void check_graph_flag_applicability(const ArgParser& args,
                                    const std::string& kind,
                                    std::initializer_list<const char*> used,
                                    bool allow_algo_seed) {
  for (const char* flag : kGraphFlags) {
    if (std::string(flag) == "input" || std::string(flag) == "gen") continue;
    // --seed is dual-role: for `color` it is also the trial/randreduce
    // algorithm seed, so it is accepted there even when the generator is
    // deterministic; for `gen`/`stats` a seed on ring/grid/complete is a
    // misdirected flag like any other.
    if (allow_algo_seed && std::string(flag) == "seed") continue;
    if (!args.has(flag)) continue;
    const bool applies = std::any_of(
        used.begin(), used.end(),
        [&](const char* u) { return std::string(u) == flag; });
    if (!applies) {
      usage_error("flag --" + std::string(flag) + " does not apply to " +
                  kind);
    }
  }
}

std::vector<const char*> combine(std::initializer_list<const char*> a,
                                 std::initializer_list<const char*> b,
                                 std::initializer_list<const char*> c) {
  std::vector<const char*> out(a);
  out.insert(out.end(), b.begin(), b.end());
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

void reject_unknown_flags(const ArgParser& args,
                          const std::vector<const char*>& allowed) {
  for (const std::string& name : args.flag_names()) {
    if (name == "failpoints") continue;  // global flag, consumed in run()
    if (name == "simd") continue;        // global flag, consumed in run()
    const bool known = std::any_of(allowed.begin(), allowed.end(),
                                   [&](const char* a) { return name == a; });
    if (!known) usage_error("unknown flag --" + name);
  }
}

void reject_positionals(const ArgParser& args) {
  if (!args.positional().empty()) {
    usage_error("unexpected argument '" + args.positional().front() + "'");
  }
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

GraphSource build_graph(const ArgParser& args, bool allow_algo_seed,
                        GraphFormat input_format, ExecContext exec) {
  GraphSource out;
  const auto check_flags = [&](const std::string& kind,
                               std::initializer_list<const char*> used) {
    check_graph_flag_applicability(args, kind, used, allow_algo_seed);
  };
  if (args.has("input")) {
    if (args.has("gen")) {
      usage_error("--gen does not apply with --input");
    }
    check_flags("--input", {"mmap"});
    const std::string path = get_value_flag(args, "input", "");
    // Record an absolute path: the coloring file may be verified (or the
    // served request re-built) from a different working directory.
    out.spec = "--input=" + std::filesystem::absolute(path).string();
    if (get_bool_strict(args, "mmap")) {
      // Out-of-core read path (graphs larger than RAM): only the .dcg
      // container supports it. A wrong file is a data error (exit 1) from
      // map_dcg_file's magic check; a wrong *flag combination* is exit 2.
      if (input_format != GraphFormat::kAuto &&
          input_format != GraphFormat::kDcg) {
        usage_error("--mmap=1 requires the .dcg format, not --format=" +
                    std::string(format_name(input_format)));
      }
      out.graph = map_dcg_file(path, exec);
      out.spec += " --mmap=1";
    } else {
      out.graph = read_graph_file(path, input_format, exec);
    }
    return out;
  }
  const std::string kind = get_value_flag(args, "gen", "gnp");
  const auto n = get_nodeid_strict(args, "n", 1000);
  const std::uint64_t seed = get_uint_strict(args, "seed", 1);
  std::ostringstream spec;
  spec << "--gen=" << kind;
  // Scalable families validate parameters inside the try below but run the
  // generator after it: a cache/temp-file I/O failure or corrupt cache is a
  // data error (exit 1, CheckError propagates), not a bad invocation.
  std::optional<ScalableGenSpec> scalable;
  try {
  if (kind == "gnp") {
    check_flags("--gen=gnp", {"n", "p", "seed"});
    const double p = get_double_strict(args, "p", 0.02);
    out.graph = gen_gnp(n, p, seed);
    spec << " --n=" << n << " --p=" << fmt_double(p) << " --seed=" << seed;
  } else if (kind == "gnm") {
    check_flags("--gen=gnm", {"n", "m", "seed"});
    // Default m = 4n, clamped to the number of possible edges so the
    // default is always feasible (gen_gnm rejects m > n(n-1)/2).
    const std::uint64_t max_m =
        n == 0 ? 0 : std::uint64_t{n} * (n - 1) / 2;
    const std::size_t m = get_uint_strict(
        args, "m", std::min(std::uint64_t{4} * n, max_m));
    out.graph = gen_gnm(n, m, seed);
    spec << " --n=" << n << " --m=" << m << " --seed=" << seed;
  } else if (kind == "regular") {
    check_flags("--gen=regular", {"n", "d", "seed"});
    const auto d = get_nodeid_strict(args, "d", 16);
    out.graph = gen_random_regular(n, d, seed);
    spec << " --n=" << n << " --d=" << d << " --seed=" << seed;
  } else if (kind == "powerlaw") {
    check_flags("--gen=powerlaw", {"n", "beta", "avgdeg", "seed"});
    const double beta = get_double_strict(args, "beta", 2.5);
    const double avgdeg = get_double_strict(args, "avgdeg", 8.0);
    out.graph = gen_power_law(n, beta, avgdeg, seed);
    spec << " --n=" << n << " --beta=" << fmt_double(beta)
         << " --avgdeg=" << fmt_double(avgdeg) << " --seed=" << seed;
  } else if (kind == "grid") {
    check_flags("--gen=grid", {"rows", "cols"});
    const auto rows = get_nodeid_strict(args, "rows", 32);
    const auto cols = get_nodeid_strict(args, "cols", 32);
    out.graph = gen_grid(rows, cols);
    spec << " --rows=" << rows << " --cols=" << cols;
  } else if (kind == "ring") {
    check_flags("--gen=ring", {"n"});
    out.graph = gen_ring(n);
    spec << " --n=" << n;
  } else if (kind == "complete") {
    check_flags("--gen=complete", {"n"});
    out.graph = gen_complete(n);
    spec << " --n=" << n;
  } else if (kind == "bipartite") {
    check_flags("--gen=bipartite", {"n", "a", "b", "p", "seed"});
    const auto a = get_nodeid_strict(args, "a", n / 2);
    const auto b = get_nodeid_strict(args, "b", n / 2);
    const double p = get_double_strict(args, "p", 0.02);
    out.graph = gen_bipartite(a, b, p, seed);
    spec << " --a=" << a << " --b=" << b << " --p=" << fmt_double(p)
         << " --seed=" << seed;
  } else if (kind == "geometric") {
    check_flags("--gen=geometric", {"n", "radius", "seed"});
    const double radius = get_double_strict(args, "radius", 0.05);
    out.graph = gen_geometric(n, radius, seed);
    spec << " --n=" << n << " --radius=" << fmt_double(radius)
         << " --seed=" << seed;
  } else if (kind == "planted") {
    check_flags("--gen=planted", {"n", "k", "p", "seed"});
    const auto k = get_nodeid_strict(args, "k", 8);
    const double p = get_double_strict(args, "p", 0.02);
    out.graph = gen_planted_kcolorable(n, k, p, seed);
    spec << " --n=" << n << " --k=" << k << " --p=" << fmt_double(p)
         << " --seed=" << seed;
  } else if (kind == "tree") {
    check_flags("--gen=tree", {"n", "seed"});
    out.graph = gen_random_tree(n, seed);
    spec << " --n=" << n << " --seed=" << seed;
  } else if (ScalableFamily family; parse_scalable_family(kind, &family)) {
    // Sharded out-of-core families (graph/scalable_gen.hpp): the instance
    // streams to a .dcg and is consumed through the mmap read path, never
    // as a heap CSR. The canonical spec deliberately omits --cache (the
    // cache is a placement detail — the same spec must name the same
    // instance on any machine, with or without a cache file).
    ScalableSource src = parse_scalable_spec(args, family, allow_algo_seed,
                                             /*allow_cache=*/true);
    scalable = src.gen;
    spec.str(src.spec);  // replaces the "--gen=KIND" prefix written above
  } else {
    usage_error("unknown --gen kind '" + kind + "'");
  }
  } catch (const CheckError& e) {
    // Out-of-domain parameters (p > 1, infeasible m, n too small) are bad
    // invocations, not data errors.
    usage_error(std::string("invalid generator parameters: ") + e.what());
  }
  if (scalable) out.graph = realize_scalable(*scalable, args, exec);
  out.spec = spec.str();
  return out;
}

ScalableSource parse_scalable_spec(const ArgParser& args,
                                   ScalableFamily family, bool allow_algo_seed,
                                   bool allow_cache) {
  ScalableSource out;
  out.gen.family = family;
  out.gen.n = get_nodeid_strict(args, "n", 1000);
  out.gen.seed = get_uint_strict(args, "seed", 1);
  const std::string kind =
      std::string("--gen=") + scalable_family_name(family);
  if (out.gen.n < 1) usage_error(kind + " needs --n >= 1");
  const auto check = [&](std::initializer_list<const char*> used,
                         std::initializer_list<const char*> used_cache) {
    check_graph_flag_applicability(args, kind,
                                   allow_cache ? used_cache : used,
                                   allow_algo_seed);
  };
  std::ostringstream spec;
  spec << kind;
  if (family == ScalableFamily::kBarabasiAlbert) {
    check({"n", "d", "seed"}, {"n", "d", "seed", "cache"});
    out.gen.d = get_nodeid_strict(args, "d", 4);
    if (out.gen.d < 1) usage_error("--gen=ba needs --d >= 1");
    spec << " --n=" << out.gen.n << " --d=" << out.gen.d
         << " --seed=" << out.gen.seed;
  } else if (family == ScalableFamily::kGeometric) {
    check({"n", "radius", "seed"}, {"n", "radius", "seed", "cache"});
    out.gen.radius = get_double_strict(args, "radius", 0.05);
    if (!(out.gen.radius > 0.0 && out.gen.radius <= 1.0)) {
      usage_error("--gen=rgg needs --radius in (0, 1]");
    }
    spec << " --n=" << out.gen.n
         << " --radius=" << fmt_double(out.gen.radius)
         << " --seed=" << out.gen.seed;
  } else if (family == ScalableFamily::kGnm) {
    check({"n", "m", "seed"}, {"n", "m", "seed", "cache"});
    out.gen.m = get_uint_strict(args, "m", std::uint64_t{4} * out.gen.n);
    spec << " --n=" << out.gen.n << " --m=" << out.gen.m
         << " --seed=" << out.gen.seed;
  } else {
    check({"n", "p", "seed"}, {"n", "p", "seed", "cache"});
    out.gen.p = get_double_strict(args, "p", 0.02);
    if (!(out.gen.p >= 0.0 && out.gen.p <= 1.0)) {
      usage_error("--gen=sgnp needs --p in [0, 1]");
    }
    spec << " --n=" << out.gen.n << " --p=" << fmt_double(out.gen.p)
         << " --seed=" << out.gen.seed;
  }
  out.spec = spec.str();
  return out;
}

PaletteSource build_palettes(const ArgParser& args, const Graph& g) {
  PaletteSource out;
  const std::string kind = get_value_flag(args, "palette", "delta1");
  const auto space =
      static_cast<Color>(get_uint_strict(args, "color-space", 1u << 20));
  const std::uint64_t pseed = get_uint_strict(args, "palette-seed", 1);
  std::ostringstream spec;
  spec << "--palette=" << kind;
  try {
  if (kind == "delta1") {
    if (args.has("color-space") || args.has("palette-seed")) {
      usage_error(
          "--color-space/--palette-seed only apply to --palette=lists or "
          "deg1");
    }
    out.palettes = PaletteSet::delta_plus_one(g);
  } else if (kind == "lists") {
    out.palettes = PaletteSet::random_lists(g, space, pseed);
    spec << " --color-space=" << space << " --palette-seed=" << pseed;
  } else if (kind == "deg1") {
    out.palettes = PaletteSet::deg_plus_one_lists(g, space, pseed);
    spec << " --color-space=" << space << " --palette-seed=" << pseed;
  } else {
    usage_error("unknown --palette kind '" + kind + "'");
  }
  } catch (const CheckError& e) {
    usage_error(std::string("invalid palette parameters: ") + e.what());
  }
  out.spec = spec.str();
  return out;
}

ArgParser parse_spec(const std::string& spec) {
  std::vector<std::string> tokens{"detcol-spec"};
  if (spec.rfind("--input=", 0) == 0) {
    // An --input spec is a single flag whose value is a file path; paths may
    // contain spaces, so never tokenize it. The one flag build_graph may
    // append after the path (" --mmap=1") is split off first.
    std::string body = spec;
    const std::string_view mm = " --mmap=1";
    if (body.size() > mm.size() &&
        std::string_view(body).substr(body.size() - mm.size()) == mm) {
      body.erase(body.size() - mm.size());
      tokens.push_back(body);
      tokens.emplace_back("--mmap=1");
    } else {
      tokens.push_back(body);
    }
  } else {
    std::istringstream is(spec);
    std::string tok;
    while (is >> tok) tokens.push_back(tok);
  }
  std::vector<const char*> argv;
  argv.reserve(tokens.size());
  for (const auto& t : tokens) argv.push_back(t.c_str());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

void write_coloring(std::ostream& os, const Coloring& coloring,
                    const std::string& graph_spec,
                    const std::string& palette_spec) {
  os << "# detcol coloring v1\n";
  os << "# graph: " << graph_spec << '\n';
  os << "# palette: " << palette_spec << '\n';
  os << coloring.color.size() << '\n';
  for (const Color c : coloring.color) os << c << '\n';
}

ColoringFile read_coloring(std::istream& is, const std::string& what) {
  ColoringFile out;
  std::string line;
  bool have_n = false;
  NodeId n = 0;
  NodeId next = 0;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '#') {
      const auto record = [&](const char* prefix, std::string* dst) {
        const std::string p(prefix);
        if (line.rfind(p, 0) == 0) *dst = line.substr(p.size());
      };
      record("# graph: ", &out.graph_spec);
      record("# palette: ", &out.palette_spec);
      continue;
    }
    // Token-based parse: istream >> uint silently wraps negative input, so
    // every non-blank line must be a single all-digit token.
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;  // whitespace-only line
    std::string rest;
    DC_CHECK(!(ls >> rest), what, ": trailing garbage on line '", line, "'");
    const bool numeric =
        std::all_of(tok.begin(), tok.end(), [](unsigned char ch) {
          return std::isdigit(ch) != 0;
        });
    DC_CHECK(numeric, what, ": malformed line '", line, "'");
    errno = 0;
    const std::uint64_t value = std::strtoull(tok.c_str(), nullptr, 10);
    DC_CHECK(errno != ERANGE, what, ": value out of range on line '", line,
             "'");
    if (!have_n) {
      DC_CHECK(value <= std::numeric_limits<NodeId>::max(), what,
               ": node count ", value, " exceeds the node-id limit");
      n = static_cast<NodeId>(value);
      have_n = true;
      out.coloring = Coloring(n);
      continue;
    }
    DC_CHECK(next < n, what, ": more than ", n, " color entries");
    out.coloring.color[next++] = value;
  }
  DC_CHECK(have_n, what, ": missing node-count header line");
  DC_CHECK(next == n, what, ": expected ", n, " color entries, found ", next);
  return out;
}

ColoringFile read_coloring_file(const std::string& path) {
  std::ifstream is(path);
  DC_CHECK(is.good(), "cannot open ", path, " for reading");
  return read_coloring(is, path);
}

std::size_t count_distinct_colors(const Coloring& coloring) {
  std::vector<Color> used;
  used.reserve(coloring.color.size());
  for (const Color c : coloring.color) {
    if (c != Coloring::kUncolored) used.push_back(c);
  }
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used.size();
}

}  // namespace detcol::cli
