// One dispatcher for every registered coloring pipeline, shared by the
// one-shot CLI (`detcol color`, the suite runner) and the serving layer.
// Keeping the dispatch in one place is what makes served responses
// byte-identical to one-shot runs: both sides execute the exact same
// pipeline code on the exact same Graph/PaletteSet, differing only in the
// ExecContext (the server hands down a thread-budgeted copy of its shared
// pool) and the optional PowerTableProvider (the server's per-instance
// table cache; null rebuilds tables per run, which never changes results).
#pragma once

#include <cstdint>
#include <string>

#include "exec/exec.hpp"
#include "graph/coloring.hpp"
#include "graph/graph.hpp"
#include "graph/palette.hpp"

namespace detcol {
class PowerTableProvider;  // hashing/batch_eval.hpp
}

namespace detcol::cli {

/// Canonical pipeline names: reduce, randreduce, lowspace, mis, trial,
/// greedy ("colorreduce" is accepted as an alias of reduce by the suite
/// parser, not here).
bool pipeline_known(const std::string& algo);

/// True for pipelines that consume an ExecContext (--threads applies);
/// greedy is the sequential centralized baseline.
bool pipeline_threaded(const std::string& algo);

/// True for pipelines that can render a stats JSON document.
bool pipeline_has_stats(const std::string& algo);

struct PipelineRun {
  Coloring coloring{0};
  std::uint64_t rounds = 0;  // model rounds where the pipeline reports them
  double wall_seconds = 0;
  std::string mpc_json;    // MPC cost block; empty for trial/greedy
  std::string stats_json;  // filled iff want_stats and pipeline_has_stats
};

/// Run `algo` on (g, palettes). `seed` feeds the randomized baselines
/// (trial, randreduce) and is ignored elsewhere. Throws UsageError on an
/// unknown algo name; pipeline failures (CheckError, DeadlineExceeded, ...)
/// propagate. Deterministic for every thread count/budget of `exec`; only
/// the "timing" block of stats_json and wall_seconds vary across runs.
PipelineRun run_pipeline(const std::string& algo, const Graph& g,
                         const PaletteSet& palettes, ExecContext exec,
                         std::uint64_t seed, bool want_stats,
                         PowerTableProvider* tables = nullptr);

}  // namespace detcol::cli
