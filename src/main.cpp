// detcol — unified command-line driver for the detcolor library.
//
// Subcommands:
//   gen     generate a graph and write it as an edge list
//   color   color a graph (generated or read from file) and emit the coloring
//   verify  check a coloring file against its graph and palettes
//   stats   run ColorReduce and emit the full JSON stats document
//   convert read a graph in any supported format, write it in another
//   suite   run a {graph x pipeline x threads} matrix from a spec file
//
// Coloring files are self-describing: the header records the exact generator
// and palette flags that produced the instance, so `detcol verify` can
// rebuild the graph and palettes deterministically without a separate graph
// file:
//
//   # detcol coloring v1
//   # graph: --gen=gnp --n=1000 --p=0.02 --seed=1
//   # palette: --palette=delta1
//   1000
//   <color of node 0>
//   ...
//
// Typical session:
//   detcol color --n=1000 --p=0.02 --out=run.colors
//   detcol verify --coloring=run.colors
#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <limits>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "baselines/greedy.hpp"
#include "baselines/mis_coloring.hpp"
#include "baselines/random_trial.hpp"
#include "baselines/randomized_reduce.hpp"
#include "core/color_reduce.hpp"
#include "core/stats_export.hpp"
#include "exec/exec.hpp"
#include "graph/coloring.hpp"
#include "graph/formats.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "hashing/simd_kernels.hpp"
#include "lowspace/low_space.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/deadline.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

#include <thread>

namespace detcol {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitFailure = 1;
constexpr int kExitUsage = 2;

const char kUsage[] = R"(detcol — deterministic (Δ+1)/(deg+1)-list coloring driver

Usage: detcol <command> [--flags]

Commands:
  gen     Generate a graph, write "n m" + edge-per-line to --out (default stdout).
  color   Color a graph and write a self-describing coloring file to --out.
  verify  Check a coloring file; rebuilds graph/palettes from its header.
  stats   Run ColorReduce and emit the full stats JSON to --out.
  convert Read a graph in any supported format, write it as --to to --out.
  suite   Run a {graph x pipeline x threads} matrix from --spec, emit JSON.
  help    Show this message.

Graph source (gen, color, stats, convert):
  --input=FILE       Read a graph file. The format is sniffed (edge list,
                     DIMACS "p edge", METIS adjacency, or the .dcg binary
                     CSR container — see docs/FORMATS.md).
  --gen=KIND         Generator when no --input: gnp (default), gnm, regular,
                     powerlaw, grid, ring, complete, bipartite, geometric,
                     planted, tree.
  --n=N              Nodes (default 1000); also --m, --d, --p (default 0.02),
                     --beta, --avgdeg, --rows, --cols, --a, --b, --radius,
                     --k as each generator requires.
  --seed=S           Generator seed (default 1); identical flags always
                     reproduce the identical graph. Also the algorithm seed
                     for --algo=trial/randreduce.

Palettes (color, stats):
  --palette=KIND     delta1 (default): uniform [Δ+1].
                     lists:  (Δ+1)-lists from [0, --color-space).
                     deg1:   (deg+1)-lists from [0, --color-space).
  --color-space=C    Color universe for lists/deg1 (default 1048576).
  --palette-seed=S   List-sampling seed (default 1).

Algorithm (color):
  --algo=NAME        reduce (default): ColorReduce, Theorem 1.1.
                     lowspace: low-space MPC coloring, Theorem 1.4.
                     greedy:   centralized sequential baseline.
                     mis:      deterministic MIS-reduction baseline.
                     trial:    randomized iterated color trial baseline.
                     randreduce: ColorReduce with seed search disabled.

Execution (color with --algo=reduce/randreduce/lowspace/mis/trial, stats,
convert):
  --threads=N        Host threads (sibling color-bin recursion +
                     seed-evaluation shards; baselines shard their per-node
                     passes; convert shards the text parse). Results are
                     bit-identical for every N.
                     Default: $DETCOL_THREADS, else 1.

Field kernel (all commands):
  --simd=KIND        Vector kernel for the F_(2^61-1) field passes: auto
                     (default: the best this host supports), scalar, avx2,
                     neon. Also readable from $DETCOL_SIMD; the flag wins.
                     Naming an ISA the host or build cannot run is a usage
                     error. Every kernel is bit-identical — forcing one
                     never changes any output, only throughput. The stats
                     and suite JSON record the selection as "kernel".

Convert:
  --from=FMT         Input format override: auto (default), edges, dimacs,
                     metis, dcg. Only applies with --input.
  --to=FMT           Output format; defaults to the --out extension
                     (.edges/.txt, .col/.dimacs, .graph/.metis, .dcg).

Suite:
  --spec=FILE        Declarative scenario matrix. Directives, one per line
                     ('#' comments): "graph NAME FLAGS..." (generator or
                     --input flags, repeatable), "palette FLAGS...",
                     "pipelines NAME..." (reduce, lowspace, mis, trial,
                     greedy), "threads N...", "kernels NAME..." (field
                     kernels to force per cell: auto, scalar, avx2, neon;
                     "auto" resolves to the host's best at parse time and
                     resolved duplicates collapse; default: the --simd /
                     $DETCOL_SIMD selection), "seed S" (trial's algorithm
                     seed), "timeout_seconds S" (per-cell wall budget;
                     expired cells report status "timeout"), "timing off"
                     (report wall_seconds as 0 for byte-identical reports).
                     Runs every {graph x pipeline x threads x kernel} cell
                     (greedy is sequential: one threads=1 cell per graph)
                     and writes one JSON report to --out. Each cell is
                     isolated: a failing or timed-out cell becomes a
                     structured "error"/"timeout" entry and the rest of
                     the matrix proceeds; an unreadable graph marks only
                     its own cells as errors. With --out=FILE the report
                     is checkpointed durably after every cell.
  --resume=REPORT    Skip every cell already recorded in REPORT (a prior,
                     possibly partial, report of the same spec), splicing
                     those entries into the new report byte-for-byte.

Fault injection (all commands):
  --failpoints=SPEC  Arm deterministic failpoints: "name@k[:action],..."
                     fires `action` (io, oom, check, timeout, kill) on the
                     k-th execution of the named site. Also readable from
                     $DETCOL_FAILPOINTS; the flag wins. See
                     docs/ARCHITECTURE.md "Failure model & fault injection".

Output (gen, color, stats):
  --out=FILE         Write to FILE instead of stdout.
  --stats=FILE       (color, reduce/randreduce/lowspace/mis) also dump run
                     JSON; every block except "timing" is bit-identical
                     across thread counts.
  --quiet            Suppress the run summary on stderr.

Verify:
  --coloring=FILE    Coloring file to check (or first positional argument).
  --graph=FILE       Override: check against this edge list instead of the
                     header's generator spec.
  --proper-only      Skip palette-membership checking.

Exit status: 0 on success / valid coloring, 1 on failure or invalid
coloring, 2 on usage errors.
)";

/// Bad invocation (exit 2) — distinct from CheckError, which is bad data /
/// failed verification (exit 1). cmd_verify converts UsageError raised while
/// re-parsing a coloring file's recorded spec into a data error: a corrupt
/// header is a file problem, not a command-line problem.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void usage_error(const std::string& msg) { throw UsageError(msg); }

// ---------------------------------------------------------------------------
// Strict flag handling: ArgParser is deliberately permissive for benches and
// examples, but a user-facing driver must reject typos and malformed numbers
// (exit 2) rather than silently running a different instance.
// ---------------------------------------------------------------------------

/// `what` names the value's source in the error ("flag --n", "DETCOL_THREADS").
std::uint64_t parse_uint_strict(const std::string& s, const std::string& what) {
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
  // strtoull silently wraps a leading '-', so require a digit up front.
  if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])) ||
      *end != '\0' || errno == ERANGE) {
    usage_error(what + " expects an unsigned integer, got '" + s + "'");
  }
  return v;
}

std::uint64_t get_uint_strict(const ArgParser& args, const std::string& name,
                              std::uint64_t fallback) {
  if (!args.has(name)) return fallback;
  return parse_uint_strict(args.get_string(name, ""), "flag --" + name);
}

NodeId get_nodeid_strict(const ArgParser& args, const std::string& name,
                         NodeId fallback) {
  const std::uint64_t v = get_uint_strict(args, name, fallback);
  if (v > std::numeric_limits<NodeId>::max()) {
    usage_error("flag --" + name + " exceeds the node-id limit (2^32-1), got " +
                std::to_string(v));
  }
  return static_cast<NodeId>(v);
}

/// For flags whose value is a path or name: a bare `--out` would otherwise
/// read as the string "true" and e.g. write output to a file named "true".
std::string get_value_flag(const ArgParser& args, const std::string& name,
                           const std::string& fallback) {
  if (args.was_bare(name)) {
    usage_error("flag --" + name + " requires a value (--" + name + "=...)");
  }
  return args.get_string(name, fallback);
}

double get_double_strict(const ArgParser& args, const std::string& name,
                         double fallback) {
  if (!args.has(name)) return fallback;
  const std::string s = args.get_string(name, "");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || *end != '\0' || errno == ERANGE) {
    usage_error("flag --" + name + " expects a number, got '" + s + "'");
  }
  return v;
}

bool get_bool_strict(const ArgParser& args, const std::string& name) {
  if (!args.has(name)) return false;
  const std::string s = args.get_string(name, "");
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  usage_error("flag --" + name + " is boolean, got '" + s + "'");
}

constexpr unsigned kMaxThreads = 256;

/// Thread count for ColorReduce runs: --threads flag first, DETCOL_THREADS
/// env second, 1 otherwise. Both sources are validated strictly — a typo'd
/// thread count must not silently run a different configuration.
unsigned resolve_threads(const ArgParser& args) {
  std::string src = "flag --threads";
  std::string s;
  if (args.has("threads")) {
    s = args.get_string("threads", "");
  } else if (const char* env = std::getenv("DETCOL_THREADS")) {
    src = "DETCOL_THREADS";
    s = env;
  } else {
    return 1;
  }
  const std::uint64_t v = parse_uint_strict(s, src);
  if (v < 1 || v > kMaxThreads) {
    usage_error(src + " must be in [1, " + std::to_string(kMaxThreads) +
                "], got " + s);
  }
  return static_cast<unsigned>(v);
}

/// Strictly validated --threads/DETCOL_THREADS resolved into the exec
/// layer's pool + context pair (exec/exec.hpp owns the lifetime rule).
ExecHolder make_exec(const ArgParser& args) {
  return make_exec_holder(resolve_threads(args));
}

struct ReduceExec {
  ExecHolder holder;
  ColorReduceConfig cfg;
};

ReduceExec make_reduce_exec(const ArgParser& args) {
  ReduceExec out;
  out.holder = make_exec(args);
  out.cfg.exec = out.holder.exec;
  return out;
}

constexpr std::initializer_list<const char*> kGraphFlags = {
    "input", "gen",  "n", "m", "d",      "p", "beta", "avgdeg",
    "rows",  "cols", "a", "b", "radius", "k", "seed"};
constexpr std::initializer_list<const char*> kPaletteFlags = {
    "palette", "color-space", "palette-seed"};

/// Which graph flags each generator actually consumes. A flag from the graph
/// family that the chosen source ignores is a misdirected invocation (the
/// user probably meant a different --gen), not something to drop silently.
void check_graph_flag_applicability(const ArgParser& args,
                                    const std::string& kind,
                                    std::initializer_list<const char*> used,
                                    bool allow_algo_seed) {
  for (const char* flag : kGraphFlags) {
    if (std::string(flag) == "input" || std::string(flag) == "gen") continue;
    // --seed is dual-role: for `color` it is also the trial/randreduce
    // algorithm seed, so it is accepted there even when the generator is
    // deterministic; for `gen`/`stats` a seed on ring/grid/complete is a
    // misdirected flag like any other.
    if (allow_algo_seed && std::string(flag) == "seed") continue;
    if (!args.has(flag)) continue;
    const bool applies = std::any_of(
        used.begin(), used.end(),
        [&](const char* u) { return std::string(u) == flag; });
    if (!applies) {
      usage_error("flag --" + std::string(flag) + " does not apply to " +
                  kind);
    }
  }
}

std::vector<const char*> combine(std::initializer_list<const char*> a,
                                 std::initializer_list<const char*> b = {},
                                 std::initializer_list<const char*> c = {}) {
  std::vector<const char*> out(a);
  out.insert(out.end(), b.begin(), b.end());
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

void reject_unknown_flags(const ArgParser& args,
                          const std::vector<const char*>& allowed) {
  for (const std::string& name : args.flag_names()) {
    if (name == "failpoints") continue;  // global flag, consumed in run()
    if (name == "simd") continue;        // global flag, consumed in run()
    const bool known = std::any_of(allowed.begin(), allowed.end(),
                                   [&](const char* a) { return name == a; });
    if (!known) usage_error("unknown flag --" + name);
  }
}

/// Arm the fault-injection registry from --failpoints (wins) or the
/// DETCOL_FAILPOINTS environment variable. A malformed spec is a bad
/// invocation (exit 2), never a silent no-op.
void init_failpoints(const ArgParser& args) {
  std::string spec;
  std::string src = "flag --failpoints";
  if (args.has("failpoints")) {
    spec = get_value_flag(args, "failpoints", "");
  } else if (const char* env = std::getenv("DETCOL_FAILPOINTS")) {
    src = "DETCOL_FAILPOINTS";
    spec = env;
  } else {
    return;
  }
  std::string error;
  if (!arm_failpoints(spec, &error)) {
    usage_error(src + ": " + error);
  }
}

/// Select the field kernel from --simd (wins) or the DETCOL_SIMD environment
/// variable. A malformed name or an ISA this host cannot run is a bad
/// invocation (exit 2) — forcing a kernel must never silently fall back.
void init_simd(const ArgParser& args) {
  std::string spec;
  std::string src = "flag --simd";
  if (args.has("simd")) {
    spec = get_value_flag(args, "simd", "");
  } else if (const char* env = std::getenv("DETCOL_SIMD")) {
    src = "DETCOL_SIMD";
    spec = env;
  } else {
    return;
  }
  std::string error;
  if (!select_simd(spec, &error)) {
    usage_error(src + ": " + error);
  }
}

void reject_positionals(const ArgParser& args) {
  if (!args.positional().empty()) {
    usage_error("unexpected argument '" + args.positional().front() + "'");
  }
}

// ---------------------------------------------------------------------------
// Graph construction + the canonical flag spec recorded in coloring headers.
// ---------------------------------------------------------------------------

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct GraphSource {
  Graph graph;
  std::string spec;  // "--gen=... --n=..." or "--input=path"
};

GraphSource build_graph(const ArgParser& args, bool allow_algo_seed,
                        GraphFormat input_format = GraphFormat::kAuto,
                        ExecContext exec = {}) {
  GraphSource out;
  const auto check_flags = [&](const std::string& kind,
                               std::initializer_list<const char*> used) {
    check_graph_flag_applicability(args, kind, used, allow_algo_seed);
  };
  if (args.has("input")) {
    if (args.has("gen")) {
      usage_error("--gen does not apply with --input");
    }
    check_flags("--input", {});
    const std::string path = get_value_flag(args, "input", "");
    out.graph = read_graph_file(path, input_format, exec);
    // Record an absolute path: the coloring file may be verified from a
    // different working directory.
    out.spec = "--input=" + std::filesystem::absolute(path).string();
    return out;
  }
  const std::string kind = get_value_flag(args, "gen", "gnp");
  const auto n = get_nodeid_strict(args, "n", 1000);
  const std::uint64_t seed = get_uint_strict(args, "seed", 1);
  std::ostringstream spec;
  spec << "--gen=" << kind;
  try {
  if (kind == "gnp") {
    check_flags("--gen=gnp", {"n", "p", "seed"});
    const double p = get_double_strict(args, "p", 0.02);
    out.graph = gen_gnp(n, p, seed);
    spec << " --n=" << n << " --p=" << fmt_double(p) << " --seed=" << seed;
  } else if (kind == "gnm") {
    check_flags("--gen=gnm", {"n", "m", "seed"});
    // Default m = 4n, clamped to the number of possible edges so the
    // default is always feasible (gen_gnm rejects m > n(n-1)/2).
    const std::uint64_t max_m =
        n == 0 ? 0 : std::uint64_t{n} * (n - 1) / 2;
    const std::size_t m = get_uint_strict(
        args, "m", std::min(std::uint64_t{4} * n, max_m));
    out.graph = gen_gnm(n, m, seed);
    spec << " --n=" << n << " --m=" << m << " --seed=" << seed;
  } else if (kind == "regular") {
    check_flags("--gen=regular", {"n", "d", "seed"});
    const auto d = get_nodeid_strict(args, "d", 16);
    out.graph = gen_random_regular(n, d, seed);
    spec << " --n=" << n << " --d=" << d << " --seed=" << seed;
  } else if (kind == "powerlaw") {
    check_flags("--gen=powerlaw", {"n", "beta", "avgdeg", "seed"});
    const double beta = get_double_strict(args, "beta", 2.5);
    const double avgdeg = get_double_strict(args, "avgdeg", 8.0);
    out.graph = gen_power_law(n, beta, avgdeg, seed);
    spec << " --n=" << n << " --beta=" << fmt_double(beta)
         << " --avgdeg=" << fmt_double(avgdeg) << " --seed=" << seed;
  } else if (kind == "grid") {
    check_flags("--gen=grid", {"rows", "cols"});
    const auto rows = get_nodeid_strict(args, "rows", 32);
    const auto cols = get_nodeid_strict(args, "cols", 32);
    out.graph = gen_grid(rows, cols);
    spec << " --rows=" << rows << " --cols=" << cols;
  } else if (kind == "ring") {
    check_flags("--gen=ring", {"n"});
    out.graph = gen_ring(n);
    spec << " --n=" << n;
  } else if (kind == "complete") {
    check_flags("--gen=complete", {"n"});
    out.graph = gen_complete(n);
    spec << " --n=" << n;
  } else if (kind == "bipartite") {
    check_flags("--gen=bipartite", {"n", "a", "b", "p", "seed"});
    const auto a = get_nodeid_strict(args, "a", n / 2);
    const auto b = get_nodeid_strict(args, "b", n / 2);
    const double p = get_double_strict(args, "p", 0.02);
    out.graph = gen_bipartite(a, b, p, seed);
    spec << " --a=" << a << " --b=" << b << " --p=" << fmt_double(p)
         << " --seed=" << seed;
  } else if (kind == "geometric") {
    check_flags("--gen=geometric", {"n", "radius", "seed"});
    const double radius = get_double_strict(args, "radius", 0.05);
    out.graph = gen_geometric(n, radius, seed);
    spec << " --n=" << n << " --radius=" << fmt_double(radius)
         << " --seed=" << seed;
  } else if (kind == "planted") {
    check_flags("--gen=planted", {"n", "k", "p", "seed"});
    const auto k = get_nodeid_strict(args, "k", 8);
    const double p = get_double_strict(args, "p", 0.02);
    out.graph = gen_planted_kcolorable(n, k, p, seed);
    spec << " --n=" << n << " --k=" << k << " --p=" << fmt_double(p)
         << " --seed=" << seed;
  } else if (kind == "tree") {
    check_flags("--gen=tree", {"n", "seed"});
    out.graph = gen_random_tree(n, seed);
    spec << " --n=" << n << " --seed=" << seed;
  } else {
    usage_error("unknown --gen kind '" + kind + "'");
  }
  } catch (const CheckError& e) {
    // Out-of-domain parameters (p > 1, infeasible m, n too small) are bad
    // invocations, not data errors.
    usage_error(std::string("invalid generator parameters: ") + e.what());
  }
  out.spec = spec.str();
  return out;
}

struct PaletteSource {
  PaletteSet palettes;
  std::string spec;
};

PaletteSource build_palettes(const ArgParser& args, const Graph& g) {
  PaletteSource out;
  const std::string kind = get_value_flag(args, "palette", "delta1");
  const auto space = static_cast<Color>(get_uint_strict(args, "color-space", 1u << 20));
  const std::uint64_t pseed = get_uint_strict(args, "palette-seed", 1);
  std::ostringstream spec;
  spec << "--palette=" << kind;
  try {
  if (kind == "delta1") {
    if (args.has("color-space") || args.has("palette-seed")) {
      usage_error(
          "--color-space/--palette-seed only apply to --palette=lists or "
          "deg1");
    }
    out.palettes = PaletteSet::delta_plus_one(g);
  } else if (kind == "lists") {
    out.palettes = PaletteSet::random_lists(g, space, pseed);
    spec << " --color-space=" << space << " --palette-seed=" << pseed;
  } else if (kind == "deg1") {
    out.palettes = PaletteSet::deg_plus_one_lists(g, space, pseed);
    spec << " --color-space=" << space << " --palette-seed=" << pseed;
  } else {
    usage_error("unknown --palette kind '" + kind + "'");
  }
  } catch (const CheckError& e) {
    usage_error(std::string("invalid palette parameters: ") + e.what());
  }
  out.spec = spec.str();
  return out;
}

/// Re-parse a recorded "--key=value ..." spec line through ArgParser.
ArgParser parse_spec(const std::string& spec) {
  std::vector<std::string> tokens{"detcol-spec"};
  if (spec.rfind("--input=", 0) == 0) {
    // An --input spec is a single flag whose value is a file path; paths may
    // contain spaces, so never tokenize it.
    tokens.push_back(spec);
  } else {
    std::istringstream is(spec);
    std::string tok;
    while (is >> tok) tokens.push_back(tok);
  }
  std::vector<const char*> argv;
  argv.reserve(tokens.size());
  for (const auto& t : tokens) argv.push_back(t.c_str());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

// ---------------------------------------------------------------------------
// Output helpers.
// ---------------------------------------------------------------------------

/// Writes via `fn` to --out if set, else to stdout. File targets go through
/// the atomic temp+fsync+rename writer, so an interrupted or failed run
/// never leaves a torn output file behind.
template <typename Fn>
void with_output(const ArgParser& args, Fn&& fn) {
  const std::string out = get_value_flag(args, "out", "-");
  if (out == "-" || out.empty()) {
    fn(std::cout);
    std::cout.flush();
    DC_CHECK(std::cout.good(), "write to stdout failed");
  } else {
    DC_FAILPOINT("out.write");
    atomic_write_stream(out, fn);
  }
}

std::size_t count_distinct_colors(const Coloring& coloring) {
  std::vector<Color> used;
  used.reserve(coloring.color.size());
  for (const Color c : coloring.color) {
    if (c != Coloring::kUncolored) used.push_back(c);
  }
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  return used.size();
}

void write_coloring(std::ostream& os, const Coloring& coloring,
                    const std::string& graph_spec,
                    const std::string& palette_spec) {
  os << "# detcol coloring v1\n";
  os << "# graph: " << graph_spec << '\n';
  os << "# palette: " << palette_spec << '\n';
  os << coloring.color.size() << '\n';
  for (const Color c : coloring.color) os << c << '\n';
}

struct ColoringFile {
  Coloring coloring{0};
  std::string graph_spec;    // empty when absent
  std::string palette_spec;  // empty when absent
};

ColoringFile read_coloring(std::istream& is, const std::string& what) {
  ColoringFile out;
  std::string line;
  bool have_n = false;
  NodeId n = 0;
  NodeId next = 0;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '#') {
      const auto record = [&](const char* prefix, std::string* dst) {
        const std::string p(prefix);
        if (line.rfind(p, 0) == 0) *dst = line.substr(p.size());
      };
      record("# graph: ", &out.graph_spec);
      record("# palette: ", &out.palette_spec);
      continue;
    }
    // Token-based parse: istream >> uint silently wraps negative input, so
    // every non-blank line must be a single all-digit token.
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;  // whitespace-only line
    std::string rest;
    DC_CHECK(!(ls >> rest), what, ": trailing garbage on line '", line, "'");
    const bool numeric =
        std::all_of(tok.begin(), tok.end(), [](unsigned char ch) {
          return std::isdigit(ch) != 0;
        });
    DC_CHECK(numeric, what, ": malformed line '", line, "'");
    errno = 0;
    const std::uint64_t value = std::strtoull(tok.c_str(), nullptr, 10);
    DC_CHECK(errno != ERANGE, what, ": value out of range on line '", line,
             "'");
    if (!have_n) {
      DC_CHECK(value <= std::numeric_limits<NodeId>::max(), what,
               ": node count ", value, " exceeds the node-id limit");
      n = static_cast<NodeId>(value);
      have_n = true;
      out.coloring = Coloring(n);
      continue;
    }
    DC_CHECK(next < n, what, ": more than ", n, " color entries");
    out.coloring.color[next++] = value;
  }
  DC_CHECK(have_n, what, ": missing node-count header line");
  DC_CHECK(next == n, what, ": expected ", n, " color entries, found ", next);
  return out;
}

ColoringFile read_coloring_file(const std::string& path) {
  std::ifstream is(path);
  DC_CHECK(is.good(), "cannot open ", path, " for reading");
  return read_coloring(is, path);
}

// ---------------------------------------------------------------------------
// Subcommands.
// ---------------------------------------------------------------------------

int cmd_gen(const ArgParser& args) {
  reject_unknown_flags(args, combine(kGraphFlags, {"out", "quiet"}));
  reject_positionals(args);
  const GraphSource src = build_graph(args, /*allow_algo_seed=*/false);
  with_output(args, [&](std::ostream& os) { write_edge_list(os, src.graph); });
  if (!get_bool_strict(args, "quiet")) {
    std::fprintf(stderr, "generated %s: n=%u, m=%zu, Delta=%u\n",
                 src.spec.c_str(), src.graph.num_nodes(),
                 src.graph.num_edges(), src.graph.max_degree());
  }
  return kExitOk;
}

int cmd_color(const ArgParser& args) {
  reject_unknown_flags(args, combine(kGraphFlags, kPaletteFlags,
                                     {"algo", "stats", "out", "quiet",
                                      "threads"}));
  reject_positionals(args);
  const std::string algo_name = get_value_flag(args, "algo", "reduce");
  // --seed doubles as the algorithm seed only for the randomized baselines;
  // anywhere else it must be consumed by the generator or rejected.
  const bool algo_uses_seed =
      algo_name == "trial" || algo_name == "randreduce";
  const GraphSource src = build_graph(args, algo_uses_seed);
  const Graph& g = src.graph;
  const PaletteSource pal = build_palettes(args, g);
  const std::string& algo = algo_name;
  const bool quiet = get_bool_strict(args, "quiet");
  if (args.has("stats") && algo != "reduce" && algo != "randreduce" &&
      algo != "lowspace" && algo != "mis") {
    usage_error("--stats is only supported with --algo=reduce, randreduce, "
                "lowspace or mis");
  }
  const bool algo_threaded = algo == "reduce" || algo == "randreduce" ||
                             algo == "lowspace" || algo == "mis" ||
                             algo == "trial";
  if (args.has("threads") && !algo_threaded) {
    usage_error(
        "--threads only applies to --algo=reduce, randreduce, lowspace, mis "
        "or trial");
  }

  Coloring coloring(g.num_nodes());
  std::uint64_t rounds = 0;  // model rounds where the algorithm reports them
  if (algo == "reduce" || algo == "randreduce") {
    const ReduceExec exec = make_reduce_exec(args);
    ColorReduceResult r =
        algo == "reduce"
            ? color_reduce(g, pal.palettes, exec.cfg)
            : randomized_reduce(g, pal.palettes,
                                get_uint_strict(args, "seed", 1), exec.cfg);
    const std::string stats = get_value_flag(args, "stats", "");
    if (!stats.empty()) {
      write_json_file(stats, result_to_json(r));
      if (!quiet) std::fprintf(stderr, "wrote stats JSON to %s\n",
                               stats.c_str());
    }
    coloring = std::move(r.coloring);
    rounds = r.ledger.total_rounds();
  } else if (algo == "lowspace") {
    const ExecHolder ex = make_exec(args);
    LowSpaceParams params;
    params.exec = ex.exec;
    WallTimer wall;
    LowSpaceResult r = low_space_color(g, pal.palettes, params);
    const std::string stats = get_value_flag(args, "stats", "");
    if (!stats.empty()) {
      write_json_file(stats, lowspace_result_to_json(r, wall.seconds()));
      if (!quiet) std::fprintf(stderr, "wrote stats JSON to %s\n",
                               stats.c_str());
    }
    coloring = std::move(r.coloring);
    rounds = r.ledger.total_rounds();
  } else if (algo == "greedy") {
    GreedyResult r = greedy_baseline(g, pal.palettes);
    coloring = std::move(r.coloring);
  } else if (algo == "mis") {
    const ExecHolder ex = make_exec(args);
    MisParams params;
    params.exec = ex.exec;
    WallTimer wall;
    MisBaselineResult r = mis_baseline_color(g, pal.palettes, params);
    const std::string stats = get_value_flag(args, "stats", "");
    if (!stats.empty()) {
      write_json_file(stats, mis_result_to_json(r, wall.seconds()));
      if (!quiet) std::fprintf(stderr, "wrote stats JSON to %s\n",
                               stats.c_str());
    }
    coloring = std::move(r.coloring);
    rounds = r.rounds;
  } else if (algo == "trial") {
    const ExecHolder ex = make_exec(args);
    RandomTrialResult r =
        random_trial_color(g, pal.palettes, get_uint_strict(args, "seed", 1),
                           kRandomTrialMaxRounds, ex.exec);
    coloring = std::move(r.coloring);
    rounds = r.model_rounds;
  } else {
    usage_error("unknown --algo '" + algo + "'");
  }

  const VerifyResult v = verify_coloring(g, pal.palettes, coloring);
  if (!v.ok) {
    std::fprintf(stderr, "detcol color: algorithm '%s' produced an INVALID "
                 "coloring: %s\n", algo.c_str(), v.issue.c_str());
    return kExitFailure;
  }
  with_output(args, [&](std::ostream& os) {
    write_coloring(os, coloring, src.spec, pal.spec);
  });
  if (!quiet) {
    std::string round_note;
    if (rounds > 0) {
      round_note =
          ", " + std::to_string(rounds) + " model rounds";
    }
    std::fprintf(stderr,
                 "colored %s (n=%u, m=%zu, Delta=%u) with algo=%s: "
                 "%zu colors used%s; verified OK\n",
                 src.spec.c_str(), g.num_nodes(), g.num_edges(),
                 g.max_degree(), algo.c_str(), count_distinct_colors(coloring),
                 round_note.c_str());
  }
  return kExitOk;
}

int cmd_verify(const ArgParser& args) {
  reject_unknown_flags(args, combine({"coloring", "graph", "proper-only"}));
  std::string path = get_value_flag(args, "coloring", "");
  if (!args.positional().empty()) {
    // A positional is only the coloring file when --coloring wasn't given;
    // anything beyond that would be silently ignored, so reject it.
    if (!path.empty() || args.positional().size() > 1) {
      usage_error("verify takes exactly one coloring file");
    }
    path = args.positional().front();
  }
  if (path.empty()) usage_error("verify needs --coloring=FILE");
  const ColoringFile file = read_coloring_file(path);

  Graph g;
  if (args.has("graph")) {
    g = read_edge_list_file(get_value_flag(args, "graph", ""));
  } else if (!file.graph_spec.empty()) {
    try {
      g = build_graph(parse_spec(file.graph_spec),
                      /*allow_algo_seed=*/false).graph;
    } catch (const UsageError& e) {
      std::fprintf(stderr, "INVALID: corrupt '# graph:' header in %s: %s\n",
                   path.c_str(), e.what());
      return kExitFailure;
    }
  } else {
    usage_error("coloring file has no '# graph:' header; pass --graph=FILE");
  }
  DC_CHECK(g.num_nodes() == file.coloring.color.size(),
           "graph has ", g.num_nodes(), " nodes but coloring file has ",
           file.coloring.color.size(), " entries");

  VerifyResult v;
  const bool proper_only =
      get_bool_strict(args, "proper-only") || file.palette_spec.empty();
  if (proper_only) {
    v = verify_proper_partial(g, file.coloring);
    if (v.ok && !file.coloring.complete()) {
      v.ok = false;
      v.issue = "coloring is incomplete (" +
                std::to_string(file.coloring.num_colored()) + " of " +
                std::to_string(file.coloring.color.size()) +
                " nodes colored)";
    }
  } else {
    try {
      const PaletteSet palettes =
          build_palettes(parse_spec(file.palette_spec), g).palettes;
      v = verify_coloring(g, palettes, file.coloring);
    } catch (const UsageError& e) {
      std::fprintf(stderr, "INVALID: corrupt '# palette:' header in %s: %s\n",
                   path.c_str(), e.what());
      return kExitFailure;
    }
  }
  if (!v.ok) {
    std::fprintf(stderr, "INVALID: %s\n", v.issue.c_str());
    return kExitFailure;
  }
  std::fprintf(stderr,
               "OK: proper%s coloring of n=%u, m=%zu with %zu colors\n",
               proper_only ? "" : ", palette-respecting", g.num_nodes(),
               g.num_edges(), count_distinct_colors(file.coloring));
  return kExitOk;
}

int cmd_stats(const ArgParser& args) {
  reject_unknown_flags(args, combine(kGraphFlags, kPaletteFlags,
                                     {"out", "quiet", "threads"}));
  reject_positionals(args);
  get_bool_strict(args, "quiet");  // accepted as a no-op, but validated
  const GraphSource src = build_graph(args, /*allow_algo_seed=*/false);
  const PaletteSource pal = build_palettes(args, src.graph);
  const ReduceExec exec = make_reduce_exec(args);
  const ColorReduceResult r = color_reduce(src.graph, pal.palettes, exec.cfg);
  const VerifyResult v = verify_coloring(src.graph, pal.palettes, r.coloring);
  DC_CHECK(v.ok, "ColorReduce produced an invalid coloring: ", v.issue);
  with_output(args,
              [&](std::ostream& os) { os << result_to_json(r) << '\n'; });
  return kExitOk;
}

int cmd_convert(const ArgParser& args) {
  reject_unknown_flags(args, combine(kGraphFlags,
                                     {"from", "to", "out", "quiet",
                                      "threads"}));
  reject_positionals(args);
  const ExecHolder ex = make_exec(args);

  GraphFormat from = GraphFormat::kAuto;
  if (args.has("from")) {
    if (!args.has("input")) usage_error("--from only applies with --input");
    const std::string name = get_value_flag(args, "from", "auto");
    if (!parse_format_name(name, &from)) {
      usage_error("unknown --from format '" + name +
                  "' (auto, edges, dimacs, metis, dcg)");
    }
  }
  const GraphSource src =
      build_graph(args, /*allow_algo_seed=*/false, from, ex.exec);

  const std::string out = get_value_flag(args, "out", "");
  if (out.empty() || out == "-") {
    usage_error("convert needs --out=FILE (binary formats cannot go to a "
                "terminal)");
  }
  GraphFormat to = GraphFormat::kAuto;
  if (args.has("to")) {
    const std::string name = get_value_flag(args, "to", "auto");
    if (!parse_format_name(name, &to)) {
      usage_error("unknown --to format '" + name +
                  "' (edges, dimacs, metis, dcg)");
    }
  }
  if (to == GraphFormat::kAuto) to = format_from_extension(out);
  if (to == GraphFormat::kAuto) {
    usage_error("cannot infer --to from the extension of '" + out +
                "'; pass --to=edges|dimacs|metis|dcg");
  }
  write_graph_file(out, src.graph, to);
  if (!get_bool_strict(args, "quiet")) {
    std::fprintf(stderr, "converted %s (n=%u, m=%zu, Delta=%u) to %s: %s\n",
                 src.spec.c_str(), src.graph.num_nodes(),
                 src.graph.num_edges(), src.graph.max_degree(),
                 format_name(to), out.c_str());
  }
  return kExitOk;
}

// ---------------------------------------------------------------------------
// The suite runner: a declarative {graph x pipeline x threads} matrix.
// ---------------------------------------------------------------------------

/// Parsed suite spec. Spec problems are data errors (CheckError, exit 1) —
/// the spec is an input file, not the command line.
struct SuiteSpec {
  struct GraphDecl {
    std::string name;
    std::string flags;  // "--gen=... --n=..." or "--input=path"
  };
  std::vector<GraphDecl> graphs;
  std::string palette_flags;          // empty -> delta1
  std::vector<std::string> pipelines;  // canonical algo names
  std::vector<unsigned> threads{1};
  std::vector<std::string> kernels;  // resolved kernel names; empty -> the
                                     // process-active (--simd) selection
  std::uint64_t algo_seed = 1;    // trial's RNG seed
  double timeout_seconds = 0;     // per-cell wall budget; 0 = unlimited
  bool timing = true;             // false: report wall_seconds as 0
};

SuiteSpec parse_suite_spec(const std::string& text, const std::string& what) {
  SuiteSpec spec;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;
    std::vector<std::string> rest;
    for (std::string tok; ls >> tok;) rest.push_back(tok);
    const auto join = [](const std::vector<std::string>& tokens,
                         std::size_t from) {
      std::string out;
      for (std::size_t i = from; i < tokens.size(); ++i) {
        if (!out.empty()) out += ' ';
        out += tokens[i];
      }
      return out;
    };
    if (directive == "graph") {
      DC_CHECK(rest.size() >= 2, what, ":", line_no,
               ": 'graph' needs a name and flags (graph NAME --gen=... | "
               "--input=FILE)");
      for (const auto& g : spec.graphs) {
        DC_CHECK(g.name != rest[0], what, ":", line_no,
                 ": duplicate graph name '", rest[0], "'");
      }
      spec.graphs.push_back({rest[0], join(rest, 1)});
    } else if (directive == "palette") {
      DC_CHECK(!rest.empty(), what, ":", line_no, ": 'palette' needs flags");
      spec.palette_flags = join(rest, 0);
    } else if (directive == "pipelines") {
      DC_CHECK(!rest.empty(), what, ":", line_no,
               ": 'pipelines' needs at least one name");
      for (std::string name : rest) {
        if (name == "colorreduce") name = "reduce";
        DC_CHECK(name == "reduce" || name == "lowspace" || name == "mis" ||
                     name == "trial" || name == "greedy",
                 what, ":", line_no, ": unknown pipeline '", name,
                 "' (reduce, lowspace, mis, trial, greedy)");
        spec.pipelines.push_back(name);
      }
    } else if (directive == "threads") {
      DC_CHECK(!rest.empty(), what, ":", line_no,
               ": 'threads' needs at least one count");
      spec.threads.clear();
      for (const auto& tok : rest) {
        std::uint64_t t = 0;
        DC_CHECK(io_detail::parse_u64(tok, &t) && t >= 1 && t <= kMaxThreads,
                 what, ":", line_no, ": thread count must be in [1, ",
                 kMaxThreads, "], got '", tok, "'");
        spec.threads.push_back(static_cast<unsigned>(t));
      }
    } else if (directive == "kernels") {
      DC_CHECK(!rest.empty(), what, ":", line_no,
               ": 'kernels' needs at least one name");
      spec.kernels.clear();
      for (const auto& tok : rest) {
        // Resolve "auto" to the host's best kernel at parse time, so the
        // cell key is a concrete kernel name; a name this host cannot run
        // is a spec (data) error, like an out-of-range thread count.
        SimdKind kind = SimdKind::kScalar;
        if (tok == "auto") {
          kind = simd_auto_kind();
        } else if (tok == "scalar") {
          kind = SimdKind::kScalar;
        } else if (tok == "avx2") {
          kind = SimdKind::kAvx2;
        } else if (tok == "neon") {
          kind = SimdKind::kNeon;
        } else {
          DC_CHECK(false, what, ":", line_no, ": unknown kernel '", tok,
                   "' (auto, scalar, avx2, neon)");
        }
        DC_CHECK(simd_available(kind), what, ":", line_no, ": kernel '", tok,
                 "' is not available on this host/build");
        const std::string name = simd_kind_name(kind);
        const bool dup = std::any_of(
            spec.kernels.begin(), spec.kernels.end(),
            [&](const std::string& k) { return k == name; });
        if (!dup) spec.kernels.push_back(name);
      }
    } else if (directive == "seed") {
      DC_CHECK(rest.size() == 1 && io_detail::parse_u64(rest[0],
                                                        &spec.algo_seed),
               what, ":", line_no, ": 'seed' needs one unsigned integer");
    } else if (directive == "timeout_seconds") {
      DC_CHECK(rest.size() == 1, what, ":", line_no,
               ": 'timeout_seconds' needs one value");
      char* end = nullptr;
      spec.timeout_seconds = std::strtod(rest[0].c_str(), &end);
      DC_CHECK(!rest[0].empty() && *end == '\0' && spec.timeout_seconds > 0,
               what, ":", line_no,
               ": 'timeout_seconds' must be a positive number, got '",
               rest[0], "'");
    } else if (directive == "timing") {
      DC_CHECK(rest.size() == 1 && (rest[0] == "on" || rest[0] == "off"),
               what, ":", line_no, ": 'timing' needs 'on' or 'off'");
      spec.timing = rest[0] == "on";
    } else {
      DC_CHECK(false, what, ":", line_no, ": unknown directive '", directive,
               "' (graph, palette, pipelines, threads, kernels, seed, "
               "timeout_seconds, timing)");
    }
  }
  DC_CHECK(!spec.graphs.empty(), what, ": spec declares no 'graph' lines");
  DC_CHECK(!spec.pipelines.empty(), what,
           ": spec declares no 'pipelines' line");
  return spec;
}

struct SuiteCell {
  std::uint64_t rounds = 0;
  std::size_t colors = 0;
  double wall_seconds = 0;
  bool verified = false;
  std::string issue;
  std::string mpc_json;  // the pipeline's MPC cost block; empty for baselines
};

SuiteCell run_suite_cell(const Graph& g, const PaletteSet& palettes,
                         const std::string& pipeline, ExecContext exec,
                         std::uint64_t seed) {
  SuiteCell cell;
  Coloring coloring(g.num_nodes());
  WallTimer timer;
  if (pipeline == "reduce") {
    ColorReduceConfig cfg;
    cfg.exec = exec;
    ColorReduceResult r = color_reduce(g, palettes, cfg);
    cell.rounds = r.ledger.total_rounds();
    cell.mpc_json = mpc_costs_to_json(r.mpc);
    coloring = std::move(r.coloring);
  } else if (pipeline == "lowspace") {
    LowSpaceParams params;
    params.exec = exec;
    LowSpaceResult r = low_space_color(g, palettes, params);
    cell.rounds = r.ledger.total_rounds();
    cell.mpc_json = mpc_costs_to_json(r.mpc);
    coloring = std::move(r.coloring);
  } else if (pipeline == "mis") {
    MisParams params;
    params.exec = exec;
    MisBaselineResult r = mis_baseline_color(g, palettes, params);
    cell.rounds = r.rounds;
    cell.mpc_json = mpc_costs_to_json(r.mpc);
    coloring = std::move(r.coloring);
  } else if (pipeline == "trial") {
    RandomTrialResult r = random_trial_color(g, palettes, seed,
                                             kRandomTrialMaxRounds, exec);
    cell.rounds = r.model_rounds;
    coloring = std::move(r.coloring);
  } else {  // greedy
    GreedyResult r = greedy_baseline(g, palettes);
    coloring = std::move(r.coloring);
  }
  cell.wall_seconds = timer.seconds();
  const VerifyResult v = verify_coloring(g, palettes, coloring);
  cell.verified = v.ok;
  cell.issue = v.issue;
  cell.colors = count_distinct_colors(coloring);
  return cell;
}

/// One graph declaration, built lazily the first time one of its cells runs.
/// A build failure (unreadable file, corrupt content, bad generator flags)
/// is captured here instead of thrown, so it marks only this graph's cells
/// as errors while the rest of the matrix proceeds.
struct GraphSlot {
  SuiteSpec::GraphDecl decl;
  bool attempted = false;
  bool failed = false;
  std::string error;
  Graph graph;
  PaletteSet palettes;
};

void ensure_graph(GraphSlot& slot, const std::string& palette_flags,
                  ExecContext exec) {
  if (slot.attempted) return;
  slot.attempted = true;
  try {
    slot.graph = build_graph(parse_spec(slot.decl.flags),
                             /*allow_algo_seed=*/false, GraphFormat::kAuto,
                             exec)
                     .graph;
    const std::string pal_flags =
        palette_flags.empty() ? "--palette=delta1" : palette_flags;
    slot.palettes = build_palettes(parse_spec(pal_flags), slot.graph).palettes;
  } catch (const UsageError& e) {
    slot.failed = true;
    slot.error = e.what();
  } catch (const std::exception& e) {  // CheckError, bad_alloc, system_error
    slot.failed = true;
    slot.error = e.what();
  }
  if (slot.failed) {
    slot.graph = Graph();
    slot.palettes = PaletteSet();
  }
}

/// A cell's structured outcome: "ok" with the run's numbers, "timeout", or
/// "error" with a taxonomy class (load, check, oom, io, verify, internal).
struct CellOutcome {
  std::string status;
  std::string error_class;
  std::string message;
  SuiteCell cell;
};

CellOutcome run_cell_isolated(const GraphSlot& slot,
                              const std::string& pipeline, ExecContext exec,
                              std::uint64_t seed, double timeout_seconds) {
  CellOutcome out;
  if (slot.failed) {
    out.status = "error";
    out.error_class = "load";
    out.message = slot.error;
    return out;
  }
  // The deadline lives on this frame for the whole pipeline call; the exec
  // copy handed down carries a pointer to it (exec/exec.hpp lifetime rule).
  Deadline deadline;
  if (timeout_seconds > 0) deadline = Deadline::after_seconds(timeout_seconds);
  exec.set_deadline(&deadline);
  try {
    DC_FAILPOINT("suite.cell");
    out.cell = run_suite_cell(slot.graph, slot.palettes, pipeline, exec, seed);
    if (out.cell.verified) {
      out.status = "ok";
    } else {
      out.status = "error";
      out.error_class = "verify";
      out.message = out.cell.issue;
    }
  } catch (const DeadlineExceeded& e) {
    out.status = "timeout";
    out.message = e.what();
  } catch (const CheckError& e) {
    out.status = "error";
    out.error_class = "check";
    out.message = e.what();
  } catch (const std::bad_alloc&) {
    out.status = "error";
    out.error_class = "oom";
    out.message = "allocation failure";
  } catch (const std::system_error& e) {
    out.status = "error";
    out.error_class = "io";
    out.message = e.what();
  } catch (const std::exception& e) {
    out.status = "error";
    out.error_class = "internal";
    out.message = e.what();
  }
  return out;
}

/// Render a suite cell's JSON object. `timing` off reports wall_seconds as 0
/// so full reports are byte-identical across runs (the resume tests rely on
/// this).
std::string render_cell_json(const std::string& graph,
                             const std::string& pipeline, unsigned threads,
                             const std::string& kernel, const CellOutcome& out,
                             bool timing) {
  JsonWriter w;
  w.begin_object();
  w.key("graph").value(graph);
  w.key("pipeline").value(pipeline);
  w.key("threads").value(threads);
  w.key("kernel").value(kernel);
  w.key("status").value(out.status);
  if (out.status == "ok") {
    w.key("rounds").value(out.cell.rounds);
    w.key("colors_used").value(std::uint64_t{out.cell.colors});
    w.key("wall_seconds").value(timing ? out.cell.wall_seconds : 0.0);
    w.key("verified").value(true);
    if (!out.cell.mpc_json.empty()) w.key("mpc").raw(out.cell.mpc_json);
  } else if (out.status == "timeout") {
    w.key("message").value(out.message);
  } else {  // "error"
    w.key("error_class").value(out.error_class);
    w.key("message").value(out.message);
  }
  w.end_object();
  return w.str();
}

int cmd_suite(const ArgParser& args) {
  reject_unknown_flags(args, combine({"spec", "out", "quiet", "resume"}));
  reject_positionals(args);
  const std::string spec_path = get_value_flag(args, "spec", "");
  if (spec_path.empty()) usage_error("suite needs --spec=FILE");
  const bool quiet = get_bool_strict(args, "quiet");
  const SuiteSpec spec = parse_suite_spec(slurp_file(spec_path), spec_path);
  const std::string out_path = get_value_flag(args, "out", "-");
  const bool file_out = !(out_path.empty() || out_path == "-");

  // --resume=REPORT: reload a prior (possibly partial) report of the same
  // spec; every cell it records is skipped and re-emitted byte-for-byte from
  // its raw span, so a clean run and a kill + resume produce identical
  // reports (with `timing off`). Problems in the report are data errors.
  std::map<std::string, std::string> resume_cells;  // key -> raw JSON object
  std::map<std::string, bool> resume_ok;            // key -> status == "ok"
  std::map<std::string, std::string> resume_graphs;  // name -> raw header row
  const auto cell_key = [](const std::string& graph,
                           const std::string& pipeline, unsigned threads,
                           const std::string& kernel) {
    return graph + '|' + pipeline + '|' + std::to_string(threads) + '|' +
           kernel;
  };
  if (args.has("resume")) {
    const std::string rpath = get_value_flag(args, "resume", "");
    if (rpath.empty()) usage_error("--resume requires a report path");
    const std::string text = slurp_file(rpath);
    const JsonValue doc = parse_json(text, rpath);
    DC_CHECK(doc.find("detcol_suite") != nullptr, rpath,
             ": not a detcol suite report (no \"detcol_suite\" field)");
    const auto raw_of = [&](const JsonValue& v) {
      return text.substr(v.raw_begin, v.raw_end - v.raw_begin);
    };
    if (const JsonValue* rows = doc.find("graphs")) {
      for (const JsonValue& row : rows->items) {
        const JsonValue* name = row.find("name");
        // Rows checkpointed before their graph was built carry a "pending"
        // marker; the resumed run rebuilds those, so skip their stubs.
        if (name != nullptr && row.find("pending") == nullptr) {
          resume_graphs[name->string_value] = raw_of(row);
        }
      }
    }
    if (const JsonValue* rows = doc.find("cells")) {
      for (const JsonValue& row : rows->items) {
        const JsonValue* graph = row.find("graph");
        const JsonValue* pipeline = row.find("pipeline");
        const JsonValue* threads = row.find("threads");
        const JsonValue* kernel = row.find("kernel");
        const JsonValue* status = row.find("status");
        DC_CHECK(graph != nullptr && pipeline != nullptr &&
                     threads != nullptr && kernel != nullptr &&
                     status != nullptr,
                 rpath, ": malformed cell entry (needs graph, pipeline, "
                 "threads, kernel, status)");
        const auto key = cell_key(
            graph->string_value, pipeline->string_value,
            static_cast<unsigned>(threads->number), kernel->string_value);
        resume_cells[key] = raw_of(row);
        resume_ok[key] = status->string_value == "ok";
      }
    }
  }

  // One pool per distinct thread count, built up front; cells reuse them.
  std::map<unsigned, ExecHolder> holders;
  for (const unsigned t : spec.threads) {
    if (!holders.count(t)) holders.emplace(t, make_exec_holder(t));
  }
  if (!holders.count(1)) holders.emplace(1, make_exec_holder(1));
  const unsigned max_threads =
      *std::max_element(spec.threads.begin(), spec.threads.end());

  std::vector<GraphSlot> slots;
  slots.reserve(spec.graphs.size());
  for (const auto& decl : spec.graphs) {
    GraphSlot slot;
    slot.decl = decl;
    slots.push_back(std::move(slot));
  }

  std::vector<std::string> cell_json;  // rendered cells, matrix order
  bool all_ok = true;

  // Full report from the current state; called after every executed cell
  // (checkpoint) and once at the end. Graph header rows: fresh for built
  // graphs, load_error for failed ones, resumed raw for graphs whose cells
  // all came from --resume, and a "pending" stub for graphs not yet reached
  // (stubs appear only in checkpoints, never in a completed report).
  const auto render_report = [&]() {
    JsonWriter w;
    w.begin_object();
    w.key("detcol_suite").value(1);
    w.key("spec").value(spec_path);  // as passed: reports should be portable
    w.key("host_cpus")
        .value(std::uint64_t{std::thread::hardware_concurrency()});
    if (spec.timeout_seconds > 0) {
      w.key("timeout_seconds").value(spec.timeout_seconds);
    }
    w.key("graphs").begin_array();
    for (const GraphSlot& slot : slots) {
      if (!slot.attempted) {
        const auto resumed = resume_graphs.find(slot.decl.name);
        if (resumed != resume_graphs.end()) {
          w.raw(resumed->second);
          continue;
        }
      }
      w.begin_object();
      w.key("name").value(slot.decl.name);
      w.key("spec").value(slot.decl.flags);
      if (slot.failed) {
        w.key("load_error").value(slot.error);
      } else if (slot.attempted) {
        w.key("n").value(std::uint64_t{slot.graph.num_nodes()});
        w.key("m").value(std::uint64_t{slot.graph.num_edges()});
        w.key("max_degree").value(std::uint64_t{slot.graph.max_degree()});
      } else {
        w.key("pending").value(true);
      }
      w.end_object();
    }
    w.end_array();
    w.key("cells").begin_array();
    for (const std::string& cell : cell_json) w.raw(cell);
    w.end_array();
    w.end_object();
    return w.str();
  };

  // Kernel axis: the spec's resolved 'kernels' list, or the process-active
  // selection (--simd / $DETCOL_SIMD) when the spec is silent. Every engine
  // captures the kernel at construction, so selecting per cell is exact.
  const std::vector<std::string> suite_kernels =
      spec.kernels.empty() ? std::vector<std::string>{active_simd_name()}
                           : spec.kernels;

  for (GraphSlot& slot : slots) {
    for (const std::string& pipeline : spec.pipelines) {
      // greedy is the sequential centralized baseline: collapse its thread
      // axis to one cell instead of re-running identical work — and its
      // kernel axis too (it does no field arithmetic at all).
      const std::vector<unsigned> cell_threads =
          pipeline == "greedy" ? std::vector<unsigned>{1} : spec.threads;
      const std::vector<std::string> cell_kernels =
          pipeline == "greedy"
              ? std::vector<std::string>{suite_kernels.front()}
              : suite_kernels;
      for (const unsigned t : cell_threads) {
        for (const std::string& kernel : cell_kernels) {
          const std::string key = cell_key(slot.decl.name, pipeline, t,
                                           kernel);
          const auto resumed = resume_cells.find(key);
          if (resumed != resume_cells.end()) {
            cell_json.push_back(resumed->second);
            all_ok = all_ok && resume_ok.at(key);
            continue;
          }
          ensure_graph(slot, spec.palette_flags, holders.at(max_threads).exec);
          {
            std::string error;
            DC_CHECK(select_simd(kernel, &error), error);  // validated above
          }
          const CellOutcome out = run_cell_isolated(
              slot, pipeline, holders.at(t).exec, spec.algo_seed,
              spec.timeout_seconds);
          all_ok = all_ok && out.status == "ok";
          cell_json.push_back(render_cell_json(slot.decl.name, pipeline, t,
                                               kernel, out, spec.timing));
          if (!quiet) {
            if (out.status == "ok") {
              std::fprintf(stderr,
                           "suite: graph=%s pipeline=%s threads=%u kernel=%s "
                           "-> %zu colors, %llu rounds, %.3fs\n",
                           slot.decl.name.c_str(), pipeline.c_str(), t,
                           kernel.c_str(), out.cell.colors,
                           static_cast<unsigned long long>(out.cell.rounds),
                           out.cell.wall_seconds);
            } else {
              std::fprintf(stderr,
                           "suite: graph=%s pipeline=%s threads=%u kernel=%s "
                           "-> %s%s%s (%s)\n",
                           slot.decl.name.c_str(), pipeline.c_str(), t,
                           kernel.c_str(), out.status.c_str(),
                           out.error_class.empty() ? "" : "/",
                           out.error_class.c_str(), out.message.c_str());
            }
          }
          // Durable checkpoint after every executed cell: a killed run loses
          // at most the cell in flight, and --resume picks up from here.
          if (file_out) {
            atomic_write_file(out_path, render_report() + "\n");
            DC_FAILPOINT("suite.checkpoint");
          }
        }
      }
    }
  }

  with_output(args, [&](std::ostream& os) { os << render_report() << '\n'; });
  if (!all_ok) {
    std::fprintf(stderr,
                 "suite: at least one cell failed, timed out, or did not "
                 "verify\n");
    return kExitFailure;
  }
  return kExitOk;
}

int run(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return kExitUsage;
  }
  const std::string command = argv[1];
  // ArgParser skips its argv[0]; handing it argv + 1 makes the subcommand
  // name the skipped slot and parses everything after it.
  const ArgParser args(argc - 1, argv + 1);
  try {
    init_failpoints(args);
    init_simd(args);
    if (command == "gen") return cmd_gen(args);
    if (command == "color") return cmd_color(args);
    if (command == "verify") return cmd_verify(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "convert") return cmd_convert(args);
    if (command == "suite") return cmd_suite(args);
    if (command == "help" || command == "--help" || command == "-h") {
      std::fputs(kUsage, stdout);
      return kExitOk;
    }
    usage_error("unknown command '" + command + "'");
  } catch (const UsageError& e) {
    std::fprintf(stderr, "detcol: %s\nRun `detcol help` for usage.\n",
                 e.what());
    return kExitUsage;
  }
}

}  // namespace
}  // namespace detcol

int main(int argc, char** argv) {
  try {
    return detcol::run(argc, argv);
  } catch (const detcol::CheckError& e) {
    std::fprintf(stderr, "detcol: %s\n", e.what());
    return 1;
  } catch (const detcol::DeadlineExceeded& e) {
    std::fprintf(stderr, "detcol: %s\n", e.what());
    return 1;
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "detcol: out of memory\n");
    return 1;
  } catch (const std::system_error& e) {
    std::fprintf(stderr, "detcol: I/O error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "detcol: unexpected error: %s\n", e.what());
    return 1;
  }
}
