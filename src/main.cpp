// detcol — unified command-line driver for the detcolor library.
//
// Subcommands:
//   gen     generate a graph and write it as an edge list
//   color   color a graph (generated or read from file) and emit the coloring
//   verify  check a coloring file against its graph and palettes
//   stats   run ColorReduce and emit the full JSON stats document
//   convert read a graph in any supported format, write it in another
//   suite   run a {graph x pipeline x threads} matrix from a spec file
//   serve   persistent coloring service over a Unix-domain socket
//
// The spec grammar (graph/palette flag strings), the coloring-file format
// and the pipeline dispatch live in src/cli/ — shared verbatim with the
// serving layer, which is what makes `detcol color --server=SOCK` responses
// byte-identical to one-shot runs.
//
// Typical session:
//   detcol color --n=1000 --p=0.02 --out=run.colors
//   detcol verify --coloring=run.colors
//
// Served session (amortizes graph + power-table setup across requests):
//   detcol serve --listen=/tmp/detcol.sock &
//   detcol color --n=1000 --p=0.02 --server=/tmp/detcol.sock --out=run.colors
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "cli/pipeline.hpp"
#include "cli/spec.hpp"
#include "core/stats_export.hpp"
#include "exec/exec.hpp"
#include "graph/coloring.hpp"
#include "graph/formats.hpp"
#include "graph/io.hpp"
#include "hashing/simd_kernels.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/deadline.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

#include <thread>

namespace detcol {
namespace {

using namespace ::detcol::cli;  // spec grammar + pipeline dispatch

constexpr int kExitOk = 0;
constexpr int kExitFailure = 1;
constexpr int kExitUsage = 2;

const char kUsage[] = R"(detcol — deterministic (Δ+1)/(deg+1)-list coloring driver

Usage: detcol <command> [--flags]

Commands:
  gen     Generate a graph, write "n m" + edge-per-line to --out (default stdout).
  color   Color a graph and write a self-describing coloring file to --out.
  verify  Check a coloring file; rebuilds graph/palettes from its header.
  stats   Run ColorReduce and emit the full stats JSON to --out.
  convert Read a graph in any supported format, write it as --to to --out.
  suite   Run a {graph x pipeline x threads} matrix from --spec, emit JSON.
  serve   Long-running coloring service on --listen=SOCKET (see below).
  help    Show this message.

Graph source (gen, color, stats, convert):
  --input=FILE       Read a graph file. The format is sniffed (edge list,
                     DIMACS "p edge", METIS adjacency, or the .dcg binary
                     CSR container — see docs/FORMATS.md).
  --gen=KIND         Generator when no --input: gnp (default), gnm, regular,
                     powerlaw, grid, ring, complete, bipartite, geometric,
                     planted, tree; or a scalable out-of-core family — ba
                     (preferential attachment, --d arcs/node), rgg (random
                     geometric, --radius), sgnm (~--m uniform edges), sgnp
                     (per-row G(n,p)). Scalable families stream to a .dcg
                     and are colored through the mmap read path, so they
                     scale past RAM; `gen` with one requires --out=FILE.dcg
                     and accepts --threads (output is bit-identical for
                     every thread count and is the canonical .dcg encoding).
  --n=N              Nodes (default 1000); also --m, --d, --p (default 0.02),
                     --beta, --avgdeg, --rows, --cols, --a, --b, --radius,
                     --k as each generator requires.
  --seed=S           Generator seed (default 1); identical flags always
                     reproduce the identical graph. Also the algorithm seed
                     for --algo=trial/randreduce.
  --cache=FILE       (color, stats, suite; scalable --gen only) Generate the
                     .dcg once at FILE and map it on later runs instead of
                     regenerating (a present cache is validated at map time
                     and cross-checked against --n). Without it the instance
                     streams to an unlinked temp file. Placement only — the
                     recorded graph spec never includes --cache.
  --mmap=1           (with --input, .dcg only) Map the file instead of
                     loading it: offsets validated eagerly, adjacency blocks
                     lazily on first touch, checksum/symmetry NOT re-checked
                     (see docs/FORMATS.md). Colors graphs larger than RAM;
                     results are byte-identical to the loaded path.

Palettes (color, stats):
  --palette=KIND     delta1 (default): uniform [Δ+1].
                     lists:  (Δ+1)-lists from [0, --color-space).
                     deg1:   (deg+1)-lists from [0, --color-space).
  --color-space=C    Color universe for lists/deg1 (default 1048576).
  --palette-seed=S   List-sampling seed (default 1).

Algorithm (color):
  --algo=NAME        reduce (default): ColorReduce, Theorem 1.1.
                     lowspace: low-space MPC coloring, Theorem 1.4.
                     greedy:   centralized sequential baseline.
                     mis:      deterministic MIS-reduction baseline.
                     trial:    randomized iterated color trial baseline.
                     randreduce: ColorReduce with seed search disabled.

Execution (color with --algo=reduce/randreduce/lowspace/mis/trial, stats,
convert):
  --threads=N        Host threads (sibling color-bin recursion +
                     seed-evaluation shards; baselines shard their per-node
                     passes; convert shards the text parse). Results are
                     bit-identical for every N.
                     Default: $DETCOL_THREADS, else 1.

Field kernel (all commands):
  --simd=KIND        Vector kernel for the F_(2^61-1) field passes: auto
                     (default: the best this host supports), scalar, avx2,
                     neon. Also readable from $DETCOL_SIMD; the flag wins.
                     Naming an ISA the host or build cannot run is a usage
                     error. Every kernel is bit-identical — forcing one
                     never changes any output, only throughput. The stats
                     and suite JSON record the selection as "kernel".

Convert:
  --from=FMT         Input format override: auto (default), edges, dimacs,
                     metis, dcg. Only applies with --input.
  --to=FMT           Output format; defaults to the --out extension
                     (.edges/.txt, .col/.dimacs, .graph/.metis, .dcg).

Suite:
  --spec=FILE        Declarative scenario matrix. Directives, one per line
                     ('#' comments): "graph NAME FLAGS..." (generator or
                     --input flags, repeatable), "palette FLAGS...",
                     "pipelines NAME..." (reduce, lowspace, mis, trial,
                     greedy), "threads N...", "kernels NAME..." (field
                     kernels to force per cell: auto, scalar, avx2, neon;
                     "auto" resolves to the host's best at parse time and
                     resolved duplicates collapse; default: the --simd /
                     $DETCOL_SIMD selection), "seed S" (trial's algorithm
                     seed), "timeout_seconds S" (per-cell wall budget;
                     expired cells report status "timeout"), "timing off"
                     (report wall_seconds as 0 for byte-identical reports),
                     "server ENDPOINT" (run every cell as a request against
                     a running `detcol serve` — the suite becomes a load
                     generator; mutually exclusive with "kernels", and the
                     cells record kernel "server").
                     Runs every {graph x pipeline x threads x kernel} cell
                     (greedy is sequential: one threads=1 cell per graph)
                     and writes one JSON report to --out. Each cell is
                     isolated: a failing or timed-out cell becomes a
                     structured "error"/"timeout" entry and the rest of
                     the matrix proceeds; an unreadable graph marks only
                     its own cells as errors. With --out=FILE the report
                     is checkpointed durably after every cell.
  --resume=REPORT    Skip every cell already recorded in REPORT (a prior,
                     possibly partial, report of the same spec), splicing
                     those entries into the new report byte-for-byte.

Serve (see docs/ARCHITECTURE.md "Serving layer", docs/FORMATS.md protocol):
  --listen=PATH      Unix-domain socket to listen on (required).
  --tcp-port=P       Also listen on 127.0.0.1:P.
  --threads=N        Shared worker pool size (default $DETCOL_THREADS or 1).
  --executors=N      Concurrent request executors (default 4).
  --queue-depth=N    Admission queue bound; beyond it requests get an
                     "overloaded" error frame (default 16).
  --cache-instances=N  Resident parsed graphs, LRU-evicted (default 8).
  --result-cache=N   Memoized responses (identical requests re-answered
                     without recomputation; sound because every pipeline is
                     deterministic). 0 disables. Default 64.
  --log=FILE         Append one JSON line per request, plus a final
                     {"event":"shutdown"} line after a graceful drain.

Server client (color, verify, stats):
  --server=ENDPOINT  Route the command through a running server instead of
                     computing locally: a socket path or "tcp:HOST:PORT".
                     --threads becomes the request's data-parallel budget;
                     outputs are byte-identical to the local run.

Fault injection (all commands):
  --failpoints=SPEC  Arm deterministic failpoints: "name@k[:action],..."
                     fires `action` (io, oom, check, timeout, kill) on the
                     k-th execution of the named site. Also readable from
                     $DETCOL_FAILPOINTS; the flag wins. See
                     docs/ARCHITECTURE.md "Failure model & fault injection".

Output (gen, color, stats):
  --out=FILE         Write to FILE instead of stdout.
  --stats=FILE       (color, reduce/randreduce/lowspace/mis) also dump run
                     JSON; every block except "timing" is bit-identical
                     across thread counts.
  --quiet            Suppress the run summary on stderr.

Verify:
  --coloring=FILE    Coloring file to check (or first positional argument).
  --graph=FILE       Override: check against this edge list instead of the
                     header's generator spec (local verify only).
  --proper-only      Skip palette-membership checking.

Exit status: 0 on success / valid coloring, 1 on failure or invalid
coloring, 2 on usage errors.
)";

/// Strictly validated --threads/DETCOL_THREADS resolved into the exec
/// layer's pool + context pair (exec/exec.hpp owns the lifetime rule).
ExecHolder make_exec(const ArgParser& args) {
  return make_exec_holder(resolve_threads(args));
}

/// Arm the fault-injection registry from --failpoints (wins) or the
/// DETCOL_FAILPOINTS environment variable. A malformed spec is a bad
/// invocation (exit 2), never a silent no-op.
void init_failpoints(const ArgParser& args) {
  std::string spec;
  std::string src = "flag --failpoints";
  if (args.has("failpoints")) {
    spec = get_value_flag(args, "failpoints", "");
  } else if (const char* env = std::getenv("DETCOL_FAILPOINTS")) {
    src = "DETCOL_FAILPOINTS";
    spec = env;
  } else {
    return;
  }
  std::string error;
  if (!arm_failpoints(spec, &error)) {
    usage_error(src + ": " + error);
  }
}

/// Select the field kernel from --simd (wins) or the DETCOL_SIMD environment
/// variable. A malformed name or an ISA this host cannot run is a bad
/// invocation (exit 2) — forcing a kernel must never silently fall back.
void init_simd(const ArgParser& args) {
  std::string spec;
  std::string src = "flag --simd";
  if (args.has("simd")) {
    spec = get_value_flag(args, "simd", "");
  } else if (const char* env = std::getenv("DETCOL_SIMD")) {
    src = "DETCOL_SIMD";
    spec = env;
  } else {
    return;
  }
  std::string error;
  if (!select_simd(spec, &error)) {
    usage_error(src + ": " + error);
  }
}

// ---------------------------------------------------------------------------
// Output helpers.
// ---------------------------------------------------------------------------

/// Writes via `fn` to --out if set, else to stdout. File targets go through
/// the atomic temp+fsync+rename writer, so an interrupted or failed run
/// never leaves a torn output file behind.
template <typename Fn>
void with_output(const ArgParser& args, Fn&& fn) {
  const std::string out = get_value_flag(args, "out", "-");
  if (out == "-" || out.empty()) {
    fn(std::cout);
    std::cout.flush();
    DC_CHECK(std::cout.good(), "write to stdout failed");
  } else {
    DC_FAILPOINT("out.write");
    atomic_write_stream(out, fn);
  }
}

// ---------------------------------------------------------------------------
// Server-client routing: re-render the command line's graph/palette flags
// as the raw spec strings the request carries. The server canonicalizes
// them through the same cli::build_graph/build_palettes this process would
// run locally.
// ---------------------------------------------------------------------------

std::string client_graph_spec(const ArgParser& args) {
  if (args.has("input")) {
    // Absolutize: the server may run in a different working directory.
    return "--input=" +
           std::filesystem::absolute(get_value_flag(args, "input", ""))
               .string();
  }
  std::string out;
  for (const char* flag : kGraphFlags) {
    if (std::string(flag) == "input" || !args.has(flag)) continue;
    if (!out.empty()) out += ' ';
    out += "--" + std::string(flag) + "=" + get_value_flag(args, flag, "");
  }
  return out;  // empty = the server-side defaults (gnp, n=1000)
}

std::string client_palette_spec(const ArgParser& args) {
  std::string out;
  for (const char* flag : kPaletteFlags) {
    if (!args.has(flag)) continue;
    if (!out.empty()) out += ' ';
    out += "--" + std::string(flag) + "=" + get_value_flag(args, flag, "");
  }
  return out;
}

/// Shared non-ok response handling: print the server's diagnostic, map
/// "usage" to exit 2 and everything else to exit 1.
int report_server_error(const char* cmd, const JsonValue& resp) {
  const JsonValue* cls = resp.find("error_class");
  const JsonValue* msg = resp.find("message");
  std::fprintf(stderr, "detcol %s: server error (%s): %s\n", cmd,
               cls != nullptr ? cls->string_value.c_str() : "unknown",
               msg != nullptr ? msg->string_value.c_str() : "no message");
  return cls != nullptr && cls->string_value == "usage" ? kExitUsage
                                                        : kExitFailure;
}

bool response_ok(const JsonValue& resp) {
  const JsonValue* ok = resp.find("ok");
  return ok != nullptr && ok->kind == JsonValue::Kind::kBool &&
         ok->bool_value;
}

/// Raw bytes of a response sub-value (to re-emit e.g. the stats document
/// byte-identically).
std::string raw_span(const std::string& raw, const JsonValue& v) {
  return raw.substr(v.raw_begin, v.raw_end - v.raw_begin);
}

int run_color_via_server(const ArgParser& args) {
  const bool quiet = get_bool_strict(args, "quiet");
  serve::Request req;
  req.op = "color";
  req.graph_spec = client_graph_spec(args);
  req.palette_spec = client_palette_spec(args);
  req.algo = get_value_flag(args, "algo", "reduce");
  req.seed = get_uint_strict(args, "seed", 1);
  req.threads = resolve_threads(args);
  req.want_stats = args.has("stats");
  // Mirror the local command's flag-applicability checks so a bad
  // invocation fails identically with or without --server.
  if (req.want_stats && !pipeline_has_stats(req.algo)) {
    usage_error("--stats is only supported with --algo=reduce, randreduce, "
                "lowspace or mis");
  }
  if (args.has("threads") && !pipeline_threaded(req.algo)) {
    usage_error(
        "--threads only applies to --algo=reduce, randreduce, lowspace, mis "
        "or trial");
  }
  std::string raw;
  serve::ServeClient client(get_value_flag(args, "server", ""));
  const JsonValue resp = client.roundtrip(req, &raw);
  if (!response_ok(resp)) return report_server_error("color", resp);
  const JsonValue* result = resp.find("result");
  DC_CHECK(result != nullptr, "server response has no \"result\"");
  const JsonValue* file = result->find("coloring_file");
  DC_CHECK(file != nullptr, "server response has no \"coloring_file\"");
  with_output(args, [&](std::ostream& os) { os << file->string_value; });
  const std::string stats_path = get_value_flag(args, "stats", "");
  if (!stats_path.empty()) {
    const JsonValue* stats = resp.find("stats");
    DC_CHECK(stats != nullptr, "server returned no stats document");
    write_json_file(stats_path, raw_span(raw, *stats));
    if (!quiet) {
      std::fprintf(stderr, "wrote stats JSON to %s\n", stats_path.c_str());
    }
  }
  if (!quiet) {
    const JsonValue* graph = result->find("graph");
    const JsonValue* colors = result->find("colors_used");
    const JsonValue* rounds = result->find("rounds");
    std::fprintf(
        stderr,
        "colored %s with algo=%s via server: %llu colors used, %llu model "
        "rounds; verified OK\n",
        graph != nullptr ? graph->string_value.c_str() : "?",
        req.algo.c_str(),
        static_cast<unsigned long long>(
            colors != nullptr ? colors->number : 0),
        static_cast<unsigned long long>(
            rounds != nullptr ? rounds->number : 0));
  }
  return kExitOk;
}

int run_verify_via_server(const ArgParser& args, const std::string& path) {
  if (args.has("graph")) {
    usage_error("--graph does not apply with --server (the graph file lives "
                "on the client)");
  }
  serve::Request req;
  req.op = "verify";
  req.coloring_text = slurp_file(path);
  req.proper_only = get_bool_strict(args, "proper-only");
  serve::ServeClient client(get_value_flag(args, "server", ""));
  const JsonValue resp = client.roundtrip(req);
  if (!response_ok(resp)) {
    // Any failed verification attempt — corrupt file, unknown spec — is a
    // data problem: exit 1, like the local path.
    const JsonValue* msg = resp.find("message");
    std::fprintf(stderr, "INVALID: %s\n",
                 msg != nullptr ? msg->string_value.c_str() : "server error");
    return kExitFailure;
  }
  const JsonValue* result = resp.find("result");
  DC_CHECK(result != nullptr, "server response has no \"result\"");
  const JsonValue* valid = result->find("valid");
  DC_CHECK(valid != nullptr, "server response has no \"valid\"");
  if (!valid->bool_value) {
    const JsonValue* issue = result->find("issue");
    std::fprintf(stderr, "INVALID: %s\n",
                 issue != nullptr ? issue->string_value.c_str() : "");
    return kExitFailure;
  }
  const JsonValue* proper = result->find("proper_only");
  const JsonValue* n = result->find("n");
  const JsonValue* m = result->find("m");
  const JsonValue* colors = result->find("colors_used");
  std::fprintf(stderr, "OK: proper%s coloring of n=%llu, m=%llu with %llu "
               "colors\n",
               proper != nullptr && proper->bool_value
                   ? ""
                   : ", palette-respecting",
               static_cast<unsigned long long>(n != nullptr ? n->number : 0),
               static_cast<unsigned long long>(m != nullptr ? m->number : 0),
               static_cast<unsigned long long>(
                   colors != nullptr ? colors->number : 0));
  return kExitOk;
}

int run_stats_via_server(const ArgParser& args) {
  serve::Request req;
  req.op = "stats";
  req.graph_spec = client_graph_spec(args);
  req.palette_spec = client_palette_spec(args);
  req.threads = resolve_threads(args);
  std::string raw;
  serve::ServeClient client(get_value_flag(args, "server", ""));
  const JsonValue resp = client.roundtrip(req, &raw);
  if (!response_ok(resp)) return report_server_error("stats", resp);
  const JsonValue* stats = resp.find("stats");
  DC_CHECK(stats != nullptr, "server returned no stats document");
  const std::string doc = raw_span(raw, *stats);
  with_output(args, [&](std::ostream& os) { os << doc << '\n'; });
  return kExitOk;
}

// ---------------------------------------------------------------------------
// Subcommands.
// ---------------------------------------------------------------------------

/// The scalable families stream straight into a .dcg container — the graph
/// never exists as a heap CSR, so the classic "build then write_edge_list"
/// shape below does not apply. They are the only `gen` path that accepts
/// --threads (sharded producers; output bit-identical for every count).
int cmd_gen_scalable(const ArgParser& args, ScalableFamily family) {
  const ScalableSource src =
      parse_scalable_spec(args, family, /*allow_algo_seed=*/false,
                          /*allow_cache=*/false);
  const std::string out = get_value_flag(args, "out", "");
  if (out.empty()) {
    usage_error(std::string("--gen=") + scalable_family_name(family) +
                " streams a .dcg container; --out=FILE.dcg is required");
  }
  if (format_from_extension(out) != GraphFormat::kDcg) {
    usage_error("--gen=" + std::string(scalable_family_name(family)) +
                " writes the .dcg container; --out must end in .dcg (use "
                "`detcol convert` for other formats)");
  }
  const ExecHolder ex = make_exec(args);
  const ScalableGenResult res = generate_scalable_dcg(src.gen, out, ex.exec);
  if (!get_bool_strict(args, "quiet")) {
    std::fprintf(stderr, "generated %s: n=%u, m=%llu, Delta=%u -> %s\n",
                 src.spec.c_str(), res.n,
                 static_cast<unsigned long long>(res.num_edges),
                 res.max_degree, out.c_str());
  }
  return kExitOk;
}

int cmd_gen(const ArgParser& args) {
  reject_unknown_flags(args, combine(kGraphFlags, {"out", "quiet", "threads"}));
  reject_positionals(args);
  if (ScalableFamily family;
      !args.has("input") &&
      parse_scalable_family(get_value_flag(args, "gen", "gnp"), &family)) {
    return cmd_gen_scalable(args, family);
  }
  if (args.has("threads")) {
    usage_error("--threads only applies to the scalable generators "
                "(--gen=ba, rgg, sgnm, sgnp)");
  }
  const GraphSource src = build_graph(args, /*allow_algo_seed=*/false);
  with_output(args, [&](std::ostream& os) { write_edge_list(os, src.graph); });
  if (!get_bool_strict(args, "quiet")) {
    std::fprintf(stderr, "generated %s: n=%u, m=%zu, Delta=%u\n",
                 src.spec.c_str(), src.graph.num_nodes(),
                 src.graph.num_edges(), src.graph.max_degree());
  }
  return kExitOk;
}

int cmd_color(const ArgParser& args) {
  reject_unknown_flags(args, combine(kGraphFlags, kPaletteFlags,
                                     {"algo", "stats", "out", "quiet",
                                      "threads", "server"}));
  reject_positionals(args);
  if (args.has("server")) return run_color_via_server(args);
  const std::string algo = get_value_flag(args, "algo", "reduce");
  if (!pipeline_known(algo)) usage_error("unknown --algo '" + algo + "'");
  // --seed doubles as the algorithm seed only for the randomized baselines;
  // anywhere else it must be consumed by the generator or rejected.
  const bool algo_uses_seed = algo == "trial" || algo == "randreduce";
  const GraphSource src = build_graph(args, algo_uses_seed);
  const Graph& g = src.graph;
  const PaletteSource pal = build_palettes(args, g);
  const bool quiet = get_bool_strict(args, "quiet");
  if (args.has("stats") && !pipeline_has_stats(algo)) {
    usage_error("--stats is only supported with --algo=reduce, randreduce, "
                "lowspace or mis");
  }
  if (args.has("threads") && !pipeline_threaded(algo)) {
    usage_error(
        "--threads only applies to --algo=reduce, randreduce, lowspace, mis "
        "or trial");
  }

  const ExecHolder ex = make_exec(args);
  const std::string stats_path = get_value_flag(args, "stats", "");
  PipelineRun run =
      run_pipeline(algo, g, pal.palettes, ex.exec,
                   get_uint_strict(args, "seed", 1), !stats_path.empty());
  if (!stats_path.empty()) {
    write_json_file(stats_path, run.stats_json);
    if (!quiet) {
      std::fprintf(stderr, "wrote stats JSON to %s\n", stats_path.c_str());
    }
  }

  const VerifyResult v = verify_coloring(g, pal.palettes, run.coloring);
  if (!v.ok) {
    std::fprintf(stderr, "detcol color: algorithm '%s' produced an INVALID "
                 "coloring: %s\n", algo.c_str(), v.issue.c_str());
    return kExitFailure;
  }
  with_output(args, [&](std::ostream& os) {
    write_coloring(os, run.coloring, src.spec, pal.spec);
  });
  if (!quiet) {
    std::string round_note;
    if (run.rounds > 0) {
      round_note = ", " + std::to_string(run.rounds) + " model rounds";
    }
    std::fprintf(stderr,
                 "colored %s (n=%u, m=%zu, Delta=%u) with algo=%s: "
                 "%zu colors used%s; verified OK\n",
                 src.spec.c_str(), g.num_nodes(), g.num_edges(),
                 g.max_degree(), algo.c_str(),
                 count_distinct_colors(run.coloring), round_note.c_str());
  }
  return kExitOk;
}

int cmd_verify(const ArgParser& args) {
  reject_unknown_flags(args,
                       combine({"coloring", "graph", "proper-only", "server"}));
  std::string path = get_value_flag(args, "coloring", "");
  if (!args.positional().empty()) {
    // A positional is only the coloring file when --coloring wasn't given;
    // anything beyond that would be silently ignored, so reject it.
    if (!path.empty() || args.positional().size() > 1) {
      usage_error("verify takes exactly one coloring file");
    }
    path = args.positional().front();
  }
  if (path.empty()) usage_error("verify needs --coloring=FILE");
  if (args.has("server")) return run_verify_via_server(args, path);
  const ColoringFile file = read_coloring_file(path);

  Graph g;
  if (args.has("graph")) {
    g = read_edge_list_file(get_value_flag(args, "graph", ""));
  } else if (!file.graph_spec.empty()) {
    try {
      g = build_graph(parse_spec(file.graph_spec),
                      /*allow_algo_seed=*/false).graph;
    } catch (const UsageError& e) {
      std::fprintf(stderr, "INVALID: corrupt '# graph:' header in %s: %s\n",
                   path.c_str(), e.what());
      return kExitFailure;
    }
  } else {
    usage_error("coloring file has no '# graph:' header; pass --graph=FILE");
  }
  DC_CHECK(g.num_nodes() == file.coloring.color.size(),
           "graph has ", g.num_nodes(), " nodes but coloring file has ",
           file.coloring.color.size(), " entries");

  VerifyResult v;
  const bool proper_only =
      get_bool_strict(args, "proper-only") || file.palette_spec.empty();
  if (proper_only) {
    v = verify_proper_partial(g, file.coloring);
    if (v.ok && !file.coloring.complete()) {
      v.ok = false;
      v.issue = "coloring is incomplete (" +
                std::to_string(file.coloring.num_colored()) + " of " +
                std::to_string(file.coloring.color.size()) +
                " nodes colored)";
    }
  } else {
    try {
      const PaletteSet palettes =
          build_palettes(parse_spec(file.palette_spec), g).palettes;
      v = verify_coloring(g, palettes, file.coloring);
    } catch (const UsageError& e) {
      std::fprintf(stderr, "INVALID: corrupt '# palette:' header in %s: %s\n",
                   path.c_str(), e.what());
      return kExitFailure;
    }
  }
  if (!v.ok) {
    std::fprintf(stderr, "INVALID: %s\n", v.issue.c_str());
    return kExitFailure;
  }
  std::fprintf(stderr,
               "OK: proper%s coloring of n=%u, m=%zu with %zu colors\n",
               proper_only ? "" : ", palette-respecting", g.num_nodes(),
               g.num_edges(), count_distinct_colors(file.coloring));
  return kExitOk;
}

int cmd_stats(const ArgParser& args) {
  reject_unknown_flags(args, combine(kGraphFlags, kPaletteFlags,
                                     {"out", "quiet", "threads", "server"}));
  reject_positionals(args);
  get_bool_strict(args, "quiet");  // accepted as a no-op, but validated
  if (args.has("server")) return run_stats_via_server(args);
  const GraphSource src = build_graph(args, /*allow_algo_seed=*/false);
  const PaletteSource pal = build_palettes(args, src.graph);
  const ExecHolder ex = make_exec(args);
  PipelineRun run = run_pipeline("reduce", src.graph, pal.palettes, ex.exec,
                                 /*seed=*/1, /*want_stats=*/true);
  const VerifyResult v = verify_coloring(src.graph, pal.palettes,
                                         run.coloring);
  DC_CHECK(v.ok, "ColorReduce produced an invalid coloring: ", v.issue);
  with_output(args,
              [&](std::ostream& os) { os << run.stats_json << '\n'; });
  return kExitOk;
}

int cmd_convert(const ArgParser& args) {
  reject_unknown_flags(args, combine(kGraphFlags,
                                     {"from", "to", "out", "quiet",
                                      "threads"}));
  reject_positionals(args);
  const ExecHolder ex = make_exec(args);

  GraphFormat from = GraphFormat::kAuto;
  if (args.has("from")) {
    if (!args.has("input")) usage_error("--from only applies with --input");
    const std::string name = get_value_flag(args, "from", "auto");
    if (!parse_format_name(name, &from)) {
      usage_error("unknown --from format '" + name +
                  "' (auto, edges, dimacs, metis, dcg)");
    }
  }
  const GraphSource src =
      build_graph(args, /*allow_algo_seed=*/false, from, ex.exec);

  const std::string out = get_value_flag(args, "out", "");
  if (out.empty() || out == "-") {
    usage_error("convert needs --out=FILE (binary formats cannot go to a "
                "terminal)");
  }
  GraphFormat to = GraphFormat::kAuto;
  if (args.has("to")) {
    const std::string name = get_value_flag(args, "to", "auto");
    if (!parse_format_name(name, &to)) {
      usage_error("unknown --to format '" + name +
                  "' (edges, dimacs, metis, dcg)");
    }
  }
  if (to == GraphFormat::kAuto) to = format_from_extension(out);
  if (to == GraphFormat::kAuto) {
    usage_error("cannot infer --to from the extension of '" + out +
                "'; pass --to=edges|dimacs|metis|dcg");
  }
  write_graph_file(out, src.graph, to);
  if (!get_bool_strict(args, "quiet")) {
    std::fprintf(stderr, "converted %s (n=%u, m=%zu, Delta=%u) to %s: %s\n",
                 src.spec.c_str(), src.graph.num_nodes(),
                 src.graph.num_edges(), src.graph.max_degree(),
                 format_name(to), out.c_str());
  }
  return kExitOk;
}

int cmd_serve(const ArgParser& args) {
  reject_unknown_flags(
      args, combine({"listen", "tcp-port", "threads", "executors",
                     "queue-depth", "cache-instances", "result-cache", "log",
                     "quiet"}));
  reject_positionals(args);
  serve::ServeOptions opts;
  opts.listen_path = get_value_flag(args, "listen", "");
  if (opts.listen_path.empty()) usage_error("serve needs --listen=PATH");
  if (args.has("tcp-port")) {
    const std::uint64_t port = get_uint_strict(args, "tcp-port", 0);
    if (port == 0 || port > 65535) {
      usage_error("--tcp-port must be in [1, 65535]");
    }
    opts.tcp_port = static_cast<int>(port);
  }
  opts.threads = resolve_threads(args);
  const std::uint64_t executors = get_uint_strict(args, "executors", 4);
  if (executors < 1 || executors > 64) {
    usage_error("--executors must be in [1, 64]");
  }
  opts.executors = static_cast<unsigned>(executors);
  opts.queue_depth = get_uint_strict(args, "queue-depth", 16);
  if (opts.queue_depth < 1) usage_error("--queue-depth must be >= 1");
  opts.max_instances = get_uint_strict(args, "cache-instances", 8);
  if (opts.max_instances < 1) usage_error("--cache-instances must be >= 1");
  opts.result_cache = get_uint_strict(args, "result-cache", 64);
  opts.log_path = get_value_flag(args, "log", "");
  opts.quiet = get_bool_strict(args, "quiet");
  return serve::run_server(opts);
}

// ---------------------------------------------------------------------------
// The suite runner: a declarative {graph x pipeline x threads} matrix.
// ---------------------------------------------------------------------------

/// Parsed suite spec. Spec problems are data errors (CheckError, exit 1) —
/// the spec is an input file, not the command line.
struct SuiteSpec {
  struct GraphDecl {
    std::string name;
    std::string flags;  // "--gen=... --n=..." or "--input=path"
  };
  std::vector<GraphDecl> graphs;
  std::string palette_flags;          // empty -> delta1
  std::vector<std::string> pipelines;  // canonical algo names
  std::vector<unsigned> threads{1};
  std::vector<std::string> kernels;  // resolved kernel names; empty -> the
                                     // process-active (--simd) selection
  std::string server;             // endpoint: run cells as served requests
  std::uint64_t algo_seed = 1;    // trial's RNG seed
  double timeout_seconds = 0;     // per-cell wall budget; 0 = unlimited
  bool timing = true;             // false: report wall_seconds as 0
};

SuiteSpec parse_suite_spec(const std::string& text, const std::string& what) {
  SuiteSpec spec;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;
    std::vector<std::string> rest;
    for (std::string tok; ls >> tok;) rest.push_back(tok);
    const auto join = [](const std::vector<std::string>& tokens,
                         std::size_t from) {
      std::string out;
      for (std::size_t i = from; i < tokens.size(); ++i) {
        if (!out.empty()) out += ' ';
        out += tokens[i];
      }
      return out;
    };
    if (directive == "graph") {
      DC_CHECK(rest.size() >= 2, what, ":", line_no,
               ": 'graph' needs a name and flags (graph NAME --gen=... | "
               "--input=FILE)");
      for (const auto& g : spec.graphs) {
        DC_CHECK(g.name != rest[0], what, ":", line_no,
                 ": duplicate graph name '", rest[0], "'");
      }
      spec.graphs.push_back({rest[0], join(rest, 1)});
    } else if (directive == "palette") {
      DC_CHECK(!rest.empty(), what, ":", line_no, ": 'palette' needs flags");
      spec.palette_flags = join(rest, 0);
    } else if (directive == "pipelines") {
      DC_CHECK(!rest.empty(), what, ":", line_no,
               ": 'pipelines' needs at least one name");
      for (std::string name : rest) {
        if (name == "colorreduce") name = "reduce";
        DC_CHECK(name == "reduce" || name == "lowspace" || name == "mis" ||
                     name == "trial" || name == "greedy",
                 what, ":", line_no, ": unknown pipeline '", name,
                 "' (reduce, lowspace, mis, trial, greedy)");
        spec.pipelines.push_back(name);
      }
    } else if (directive == "threads") {
      DC_CHECK(!rest.empty(), what, ":", line_no,
               ": 'threads' needs at least one count");
      spec.threads.clear();
      for (const auto& tok : rest) {
        std::uint64_t t = 0;
        DC_CHECK(io_detail::parse_u64(tok, &t) && t >= 1 && t <= kMaxThreads,
                 what, ":", line_no, ": thread count must be in [1, ",
                 kMaxThreads, "], got '", tok, "'");
        spec.threads.push_back(static_cast<unsigned>(t));
      }
    } else if (directive == "kernels") {
      DC_CHECK(!rest.empty(), what, ":", line_no,
               ": 'kernels' needs at least one name");
      spec.kernels.clear();
      for (const auto& tok : rest) {
        // Resolve "auto" to the host's best kernel at parse time, so the
        // cell key is a concrete kernel name; a name this host cannot run
        // is a spec (data) error, like an out-of-range thread count.
        SimdKind kind = SimdKind::kScalar;
        if (tok == "auto") {
          kind = simd_auto_kind();
        } else if (tok == "scalar") {
          kind = SimdKind::kScalar;
        } else if (tok == "avx2") {
          kind = SimdKind::kAvx2;
        } else if (tok == "neon") {
          kind = SimdKind::kNeon;
        } else {
          DC_CHECK(false, what, ":", line_no, ": unknown kernel '", tok,
                   "' (auto, scalar, avx2, neon)");
        }
        DC_CHECK(simd_available(kind), what, ":", line_no, ": kernel '", tok,
                 "' is not available on this host/build");
        const std::string name = simd_kind_name(kind);
        const bool dup = std::any_of(
            spec.kernels.begin(), spec.kernels.end(),
            [&](const std::string& k) { return k == name; });
        if (!dup) spec.kernels.push_back(name);
      }
    } else if (directive == "server") {
      DC_CHECK(rest.size() == 1, what, ":", line_no,
               ": 'server' needs one endpoint (socket path or "
               "tcp:HOST:PORT)");
      spec.server = rest[0];
    } else if (directive == "seed") {
      DC_CHECK(rest.size() == 1 && io_detail::parse_u64(rest[0],
                                                        &spec.algo_seed),
               what, ":", line_no, ": 'seed' needs one unsigned integer");
    } else if (directive == "timeout_seconds") {
      DC_CHECK(rest.size() == 1, what, ":", line_no,
               ": 'timeout_seconds' needs one value");
      char* end = nullptr;
      spec.timeout_seconds = std::strtod(rest[0].c_str(), &end);
      DC_CHECK(!rest[0].empty() && *end == '\0' && spec.timeout_seconds > 0,
               what, ":", line_no,
               ": 'timeout_seconds' must be a positive number, got '",
               rest[0], "'");
    } else if (directive == "timing") {
      DC_CHECK(rest.size() == 1 && (rest[0] == "on" || rest[0] == "off"),
               what, ":", line_no, ": 'timing' needs 'on' or 'off'");
      spec.timing = rest[0] == "on";
    } else {
      DC_CHECK(false, what, ":", line_no, ": unknown directive '", directive,
               "' (graph, palette, pipelines, threads, kernels, server, "
               "seed, timeout_seconds, timing)");
    }
  }
  DC_CHECK(!spec.graphs.empty(), what, ": spec declares no 'graph' lines");
  DC_CHECK(!spec.pipelines.empty(), what,
           ": spec declares no 'pipelines' line");
  DC_CHECK(spec.server.empty() || spec.kernels.empty(), what,
           ": 'server' and 'kernels' are mutually exclusive (the kernel is "
           "the server's --simd selection)");
  return spec;
}

struct SuiteCell {
  std::uint64_t rounds = 0;
  std::size_t colors = 0;
  double wall_seconds = 0;
  bool verified = false;
  std::string issue;
  std::string mpc_json;  // the pipeline's MPC cost block; empty for baselines
};

SuiteCell run_suite_cell(const Graph& g, const PaletteSet& palettes,
                         const std::string& pipeline, ExecContext exec,
                         std::uint64_t seed) {
  SuiteCell cell;
  PipelineRun run =
      run_pipeline(pipeline, g, palettes, exec, seed, /*want_stats=*/false);
  cell.rounds = run.rounds;
  cell.mpc_json = std::move(run.mpc_json);
  cell.wall_seconds = run.wall_seconds;
  const VerifyResult v = verify_coloring(g, palettes, run.coloring);
  cell.verified = v.ok;
  cell.issue = v.issue;
  cell.colors = count_distinct_colors(run.coloring);
  return cell;
}

/// One graph declaration, built lazily the first time one of its cells runs.
/// A build failure (unreadable file, corrupt content, bad generator flags)
/// is captured here instead of thrown, so it marks only this graph's cells
/// as errors while the rest of the matrix proceeds.
struct GraphSlot {
  SuiteSpec::GraphDecl decl;
  bool attempted = false;
  bool failed = false;
  std::string error;
  Graph graph;
  PaletteSet palettes;
};

void ensure_graph(GraphSlot& slot, const std::string& palette_flags,
                  ExecContext exec) {
  if (slot.attempted) return;
  slot.attempted = true;
  try {
    slot.graph = build_graph(parse_spec(slot.decl.flags),
                             /*allow_algo_seed=*/false, GraphFormat::kAuto,
                             exec)
                     .graph;
    const std::string pal_flags =
        palette_flags.empty() ? "--palette=delta1" : palette_flags;
    slot.palettes = build_palettes(parse_spec(pal_flags), slot.graph).palettes;
  } catch (const UsageError& e) {
    slot.failed = true;
    slot.error = e.what();
  } catch (const std::exception& e) {  // CheckError, bad_alloc, system_error
    slot.failed = true;
    slot.error = e.what();
  }
  if (slot.failed) {
    slot.graph = Graph();
    slot.palettes = PaletteSet();
  }
}

/// A cell's structured outcome: "ok" with the run's numbers, "timeout", or
/// "error" with a taxonomy class (load, check, oom, io, verify, internal).
struct CellOutcome {
  std::string status;
  std::string error_class;
  std::string message;
  SuiteCell cell;
};

CellOutcome run_cell_isolated(const GraphSlot& slot,
                              const std::string& pipeline, ExecContext exec,
                              std::uint64_t seed, double timeout_seconds) {
  CellOutcome out;
  if (slot.failed) {
    out.status = "error";
    out.error_class = "load";
    out.message = slot.error;
    return out;
  }
  // The deadline lives on this frame for the whole pipeline call; the exec
  // copy handed down carries a pointer to it (exec/exec.hpp lifetime rule).
  Deadline deadline;
  if (timeout_seconds > 0) deadline = Deadline::after_seconds(timeout_seconds);
  exec.set_deadline(&deadline);
  try {
    DC_FAILPOINT("suite.cell");
    out.cell = run_suite_cell(slot.graph, slot.palettes, pipeline, exec, seed);
    if (out.cell.verified) {
      out.status = "ok";
    } else {
      out.status = "error";
      out.error_class = "verify";
      out.message = out.cell.issue;
    }
  } catch (const DeadlineExceeded& e) {
    out.status = "timeout";
    out.message = e.what();
  } catch (const CheckError& e) {
    out.status = "error";
    out.error_class = "check";
    out.message = e.what();
  } catch (const std::bad_alloc&) {
    out.status = "error";
    out.error_class = "oom";
    out.message = "allocation failure";
  } catch (const std::system_error& e) {
    out.status = "error";
    out.error_class = "io";
    out.message = e.what();
  } catch (const std::exception& e) {
    out.status = "error";
    out.error_class = "internal";
    out.message = e.what();
  }
  return out;
}

/// The 'server' directive: the cell becomes one request against a running
/// `detcol serve` — a load-generator mode. The graph is still built locally
/// (the report header records n/m/Δ), but the pipeline runs server-side
/// under the cell's thread budget; the response's deterministic fields map
/// onto the same cell schema.
CellOutcome run_cell_via_server(const std::string& endpoint,
                                const SuiteSpec& spec, const GraphSlot& slot,
                                const std::string& pipeline,
                                unsigned threads) {
  CellOutcome out;
  if (slot.failed) {
    out.status = "error";
    out.error_class = "load";
    out.message = slot.error;
    return out;
  }
  try {
    DC_FAILPOINT("suite.cell");
    serve::Request req;
    req.op = "color";
    req.graph_spec = slot.decl.flags;
    req.palette_spec = spec.palette_flags;
    req.algo = pipeline;
    req.seed = spec.algo_seed;
    req.threads = threads;
    req.timeout_seconds = spec.timeout_seconds;
    std::string raw;
    serve::ServeClient client(endpoint);
    const JsonValue resp = client.roundtrip(req, &raw);
    if (response_ok(resp)) {
      const JsonValue* result = resp.find("result");
      DC_CHECK(result != nullptr, "server response has no \"result\"");
      const JsonValue* rounds = result->find("rounds");
      const JsonValue* colors = result->find("colors_used");
      DC_CHECK(rounds != nullptr && colors != nullptr,
               "server response result lacks rounds/colors_used");
      out.cell.rounds = static_cast<std::uint64_t>(rounds->number);
      out.cell.colors = static_cast<std::size_t>(colors->number);
      out.cell.verified = true;
      if (const JsonValue* mpc = result->find("mpc")) {
        out.cell.mpc_json = raw.substr(mpc->raw_begin,
                                       mpc->raw_end - mpc->raw_begin);
      }
      if (const JsonValue* transient = resp.find("transient")) {
        if (const JsonValue* wall = transient->find("wall_seconds")) {
          out.cell.wall_seconds = wall->number;
        }
      }
      out.status = "ok";
    } else {
      const JsonValue* cls = resp.find("error_class");
      const JsonValue* msg = resp.find("message");
      const std::string error_class =
          cls != nullptr ? cls->string_value : "internal";
      out.message = msg != nullptr ? msg->string_value : "server error";
      if (error_class == "timeout") {
        out.status = "timeout";
      } else {
        out.status = "error";
        out.error_class = error_class;
      }
    }
  } catch (const CheckError& e) {  // connect/transport failures
    out.status = "error";
    out.error_class = "io";
    out.message = e.what();
  } catch (const std::exception& e) {
    out.status = "error";
    out.error_class = "internal";
    out.message = e.what();
  }
  return out;
}

/// Render a suite cell's JSON object. `timing` off reports wall_seconds as 0
/// so full reports are byte-identical across runs (the resume tests rely on
/// this).
std::string render_cell_json(const std::string& graph,
                             const std::string& pipeline, unsigned threads,
                             const std::string& kernel, const CellOutcome& out,
                             bool timing) {
  JsonWriter w;
  w.begin_object();
  w.key("graph").value(graph);
  w.key("pipeline").value(pipeline);
  w.key("threads").value(threads);
  w.key("kernel").value(kernel);
  w.key("status").value(out.status);
  if (out.status == "ok") {
    w.key("rounds").value(out.cell.rounds);
    w.key("colors_used").value(std::uint64_t{out.cell.colors});
    w.key("wall_seconds").value(timing ? out.cell.wall_seconds : 0.0);
    w.key("verified").value(true);
    if (!out.cell.mpc_json.empty()) w.key("mpc").raw(out.cell.mpc_json);
  } else if (out.status == "timeout") {
    w.key("message").value(out.message);
  } else {  // "error"
    w.key("error_class").value(out.error_class);
    w.key("message").value(out.message);
  }
  w.end_object();
  return w.str();
}

int cmd_suite(const ArgParser& args) {
  reject_unknown_flags(args, combine({"spec", "out", "quiet", "resume"}));
  reject_positionals(args);
  const std::string spec_path = get_value_flag(args, "spec", "");
  if (spec_path.empty()) usage_error("suite needs --spec=FILE");
  const bool quiet = get_bool_strict(args, "quiet");
  const SuiteSpec spec = parse_suite_spec(slurp_file(spec_path), spec_path);
  const std::string out_path = get_value_flag(args, "out", "-");
  const bool file_out = !(out_path.empty() || out_path == "-");
  const bool via_server = !spec.server.empty();

  // --resume=REPORT: reload a prior (possibly partial) report of the same
  // spec; every cell it records is skipped and re-emitted byte-for-byte from
  // its raw span, so a clean run and a kill + resume produce identical
  // reports (with `timing off`). Problems in the report are data errors.
  std::map<std::string, std::string> resume_cells;  // key -> raw JSON object
  std::map<std::string, bool> resume_ok;            // key -> status == "ok"
  std::map<std::string, std::string> resume_graphs;  // name -> raw header row
  const auto cell_key = [](const std::string& graph,
                           const std::string& pipeline, unsigned threads,
                           const std::string& kernel) {
    return graph + '|' + pipeline + '|' + std::to_string(threads) + '|' +
           kernel;
  };
  if (args.has("resume")) {
    const std::string rpath = get_value_flag(args, "resume", "");
    if (rpath.empty()) usage_error("--resume requires a report path");
    const std::string text = slurp_file(rpath);
    const JsonValue doc = parse_json(text, rpath);
    DC_CHECK(doc.find("detcol_suite") != nullptr, rpath,
             ": not a detcol suite report (no \"detcol_suite\" field)");
    const auto raw_of = [&](const JsonValue& v) {
      return text.substr(v.raw_begin, v.raw_end - v.raw_begin);
    };
    if (const JsonValue* rows = doc.find("graphs")) {
      for (const JsonValue& row : rows->items) {
        const JsonValue* name = row.find("name");
        // Rows checkpointed before their graph was built carry a "pending"
        // marker; the resumed run rebuilds those, so skip their stubs.
        if (name != nullptr && row.find("pending") == nullptr) {
          resume_graphs[name->string_value] = raw_of(row);
        }
      }
    }
    if (const JsonValue* rows = doc.find("cells")) {
      for (const JsonValue& row : rows->items) {
        const JsonValue* graph = row.find("graph");
        const JsonValue* pipeline = row.find("pipeline");
        const JsonValue* threads = row.find("threads");
        const JsonValue* kernel = row.find("kernel");
        const JsonValue* status = row.find("status");
        DC_CHECK(graph != nullptr && pipeline != nullptr &&
                     threads != nullptr && kernel != nullptr &&
                     status != nullptr,
                 rpath, ": malformed cell entry (needs graph, pipeline, "
                 "threads, kernel, status)");
        const auto key = cell_key(
            graph->string_value, pipeline->string_value,
            static_cast<unsigned>(threads->number), kernel->string_value);
        resume_cells[key] = raw_of(row);
        resume_ok[key] = status->string_value == "ok";
      }
    }
  }

  // One pool per distinct thread count, built up front; cells reuse them.
  // In server mode the cells run remotely, but graphs are still built
  // locally for the report header.
  std::map<unsigned, ExecHolder> holders;
  for (const unsigned t : spec.threads) {
    if (!holders.count(t)) holders.emplace(t, make_exec_holder(t));
  }
  if (!holders.count(1)) holders.emplace(1, make_exec_holder(1));
  const unsigned max_threads =
      *std::max_element(spec.threads.begin(), spec.threads.end());

  std::vector<GraphSlot> slots;
  slots.reserve(spec.graphs.size());
  for (const auto& decl : spec.graphs) {
    GraphSlot slot;
    slot.decl = decl;
    slots.push_back(std::move(slot));
  }

  std::vector<std::string> cell_json;  // rendered cells, matrix order
  bool all_ok = true;

  // Full report from the current state; called after every executed cell
  // (checkpoint) and once at the end. Graph header rows: fresh for built
  // graphs, load_error for failed ones, resumed raw for graphs whose cells
  // all came from --resume, and a "pending" stub for graphs not yet reached
  // (stubs appear only in checkpoints, never in a completed report).
  const auto render_report = [&]() {
    JsonWriter w;
    w.begin_object();
    w.key("detcol_suite").value(1);
    w.key("spec").value(spec_path);  // as passed: reports should be portable
    w.key("host_cpus")
        .value(std::uint64_t{std::thread::hardware_concurrency()});
    if (via_server) w.key("server").value(spec.server);
    if (spec.timeout_seconds > 0) {
      w.key("timeout_seconds").value(spec.timeout_seconds);
    }
    w.key("graphs").begin_array();
    for (const GraphSlot& slot : slots) {
      if (!slot.attempted) {
        const auto resumed = resume_graphs.find(slot.decl.name);
        if (resumed != resume_graphs.end()) {
          w.raw(resumed->second);
          continue;
        }
      }
      w.begin_object();
      w.key("name").value(slot.decl.name);
      w.key("spec").value(slot.decl.flags);
      if (slot.failed) {
        w.key("load_error").value(slot.error);
      } else if (slot.attempted) {
        w.key("n").value(std::uint64_t{slot.graph.num_nodes()});
        w.key("m").value(std::uint64_t{slot.graph.num_edges()});
        w.key("max_degree").value(std::uint64_t{slot.graph.max_degree()});
      } else {
        w.key("pending").value(true);
      }
      w.end_object();
    }
    w.end_array();
    w.key("cells").begin_array();
    for (const std::string& cell : cell_json) w.raw(cell);
    w.end_array();
    w.end_object();
    return w.str();
  };

  // Kernel axis: the spec's resolved 'kernels' list, or the process-active
  // selection (--simd / $DETCOL_SIMD) when the spec is silent. Every engine
  // captures the kernel at construction, so selecting per cell is exact. In
  // server mode the kernel is whatever the server runs; cells record the
  // pseudo-kernel "server".
  const std::vector<std::string> suite_kernels =
      via_server ? std::vector<std::string>{"server"}
      : spec.kernels.empty()
          ? std::vector<std::string>{active_simd_name()}
          : spec.kernels;

  for (GraphSlot& slot : slots) {
    for (const std::string& pipeline : spec.pipelines) {
      // greedy is the sequential centralized baseline: collapse its thread
      // axis to one cell instead of re-running identical work — and its
      // kernel axis too (it does no field arithmetic at all).
      const std::vector<unsigned> cell_threads =
          pipeline == "greedy" ? std::vector<unsigned>{1} : spec.threads;
      const std::vector<std::string> cell_kernels =
          pipeline == "greedy"
              ? std::vector<std::string>{suite_kernels.front()}
              : suite_kernels;
      for (const unsigned t : cell_threads) {
        for (const std::string& kernel : cell_kernels) {
          const std::string key = cell_key(slot.decl.name, pipeline, t,
                                           kernel);
          const auto resumed = resume_cells.find(key);
          if (resumed != resume_cells.end()) {
            cell_json.push_back(resumed->second);
            all_ok = all_ok && resume_ok.at(key);
            continue;
          }
          ensure_graph(slot, spec.palette_flags, holders.at(max_threads).exec);
          if (!via_server) {
            std::string error;
            DC_CHECK(select_simd(kernel, &error), error);  // validated above
          }
          const CellOutcome out =
              via_server
                  ? run_cell_via_server(spec.server, spec, slot, pipeline, t)
                  : run_cell_isolated(slot, pipeline, holders.at(t).exec,
                                      spec.algo_seed, spec.timeout_seconds);
          all_ok = all_ok && out.status == "ok";
          cell_json.push_back(render_cell_json(slot.decl.name, pipeline, t,
                                               kernel, out, spec.timing));
          if (!quiet) {
            if (out.status == "ok") {
              std::fprintf(stderr,
                           "suite: graph=%s pipeline=%s threads=%u kernel=%s "
                           "-> %zu colors, %llu rounds, %.3fs\n",
                           slot.decl.name.c_str(), pipeline.c_str(), t,
                           kernel.c_str(), out.cell.colors,
                           static_cast<unsigned long long>(out.cell.rounds),
                           out.cell.wall_seconds);
            } else {
              std::fprintf(stderr,
                           "suite: graph=%s pipeline=%s threads=%u kernel=%s "
                           "-> %s%s%s (%s)\n",
                           slot.decl.name.c_str(), pipeline.c_str(), t,
                           kernel.c_str(), out.status.c_str(),
                           out.error_class.empty() ? "" : "/",
                           out.error_class.c_str(), out.message.c_str());
            }
          }
          // Durable checkpoint after every executed cell: a killed run loses
          // at most the cell in flight, and --resume picks up from here.
          if (file_out) {
            atomic_write_file(out_path, render_report() + "\n");
            DC_FAILPOINT("suite.checkpoint");
          }
        }
      }
    }
  }

  with_output(args, [&](std::ostream& os) { os << render_report() << '\n'; });
  if (!all_ok) {
    std::fprintf(stderr,
                 "suite: at least one cell failed, timed out, or did not "
                 "verify\n");
    return kExitFailure;
  }
  return kExitOk;
}

int run(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return kExitUsage;
  }
  const std::string command = argv[1];
  // ArgParser skips its argv[0]; handing it argv + 1 makes the subcommand
  // name the skipped slot and parses everything after it.
  const ArgParser args(argc - 1, argv + 1);
  try {
    init_failpoints(args);
    init_simd(args);
    if (command == "gen") return cmd_gen(args);
    if (command == "color") return cmd_color(args);
    if (command == "verify") return cmd_verify(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "convert") return cmd_convert(args);
    if (command == "suite") return cmd_suite(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "help" || command == "--help" || command == "-h") {
      std::fputs(kUsage, stdout);
      return kExitOk;
    }
    usage_error("unknown command '" + command + "'");
  } catch (const UsageError& e) {
    std::fprintf(stderr, "detcol: %s\nRun `detcol help` for usage.\n",
                 e.what());
    return kExitUsage;
  }
}

}  // namespace
}  // namespace detcol

int main(int argc, char** argv) {
  try {
    return detcol::run(argc, argv);
  } catch (const detcol::CheckError& e) {
    std::fprintf(stderr, "detcol: %s\n", e.what());
    return 1;
  } catch (const detcol::DeadlineExceeded& e) {
    std::fprintf(stderr, "detcol: %s\n", e.what());
    return 1;
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr, "detcol: out of memory\n");
    return 1;
  } catch (const std::system_error& e) {
    std::fprintf(stderr, "detcol: I/O error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "detcol: unexpected error: %s\n", e.what());
    return 1;
  }
}
